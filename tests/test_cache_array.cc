/**
 * @file
 * Unit tests for the generic set-associative cache array.
 */

#include <gtest/gtest.h>

#include <limits>

#include "mem/cache_array.hh"
#include "mem/packed_cache_array.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

struct Payload {
    int value = 0;
};

TEST(CacheArray, InsertAndFind)
{
    CacheArray<Payload> cache(4, 2);
    EXPECT_EQ(cache.capacity(), 8u);
    EXPECT_EQ(cache.size(), 0u);

    cache.insert(10, Payload{42});
    Payload *p = cache.find(10);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(11), nullptr);
}

TEST(CacheArray, InsertOverwritesExistingKey)
{
    CacheArray<Payload> cache(4, 2);
    cache.insert(10, Payload{1});
    auto evicted = cache.insert(10, Payload{2});
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(cache.find(10)->value, 2);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheArray, EvictsLruWithinSet)
{
    CacheArray<Payload> cache(1, 2);  // one set, 2 ways
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.find(1);  // make key 2 the LRU
    auto evicted = cache.insert(3, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_EQ(evicted->payload.value, 2);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
}

TEST(CacheArray, PeekDoesNotRefreshLru)
{
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.peek(1);  // must NOT protect key 1
    auto evicted = cache.insert(3, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);
}

TEST(CacheArray, SetIndexingIsolatesConflicts)
{
    CacheArray<Payload> cache(4, 1);  // direct mapped, 4 sets
    // Keys 0 and 4 collide (same set); 1 does not.
    cache.insert(0, Payload{0});
    cache.insert(1, Payload{1});
    auto evicted = cache.insert(4, Payload{4});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 0u);
    EXPECT_NE(cache.find(1), nullptr);
}

TEST(CacheArray, EraseRemoves)
{
    CacheArray<Payload> cache(2, 2);
    cache.insert(5, Payload{5});
    auto erased = cache.erase(5);
    ASSERT_TRUE(erased.has_value());
    EXPECT_EQ(erased->value, 5);
    EXPECT_EQ(cache.find(5), nullptr);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.erase(5).has_value());
}

TEST(CacheArray, ForEachVisitsAllValidLines)
{
    CacheArray<Payload> cache(4, 4);
    for (int i = 0; i < 10; ++i)
        cache.insert(static_cast<std::uint64_t>(i), Payload{i});
    int count = 0, sum = 0;
    cache.forEach([&](std::uint64_t, Payload &p) {
        ++count;
        sum += p.value;
    });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(sum, 45);
}

TEST(CacheArray, ClearEmptiesEverything)
{
    CacheArray<Payload> cache(4, 4);
    for (int i = 0; i < 10; ++i)
        cache.insert(static_cast<std::uint64_t>(i), Payload{i});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(cache.find(static_cast<std::uint64_t>(i)), nullptr);
}

TEST(CacheArray, FillsAllWaysBeforeEvicting)
{
    CacheArray<Payload> cache(1, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(cache.insert(static_cast<std::uint64_t>(i),
                                  Payload{i})
                         .has_value());
    EXPECT_TRUE(cache.insert(100, Payload{}).has_value());
}

TEST(CacheArray, ZeroGeometryPanics)
{
    PanicGuard guard;
    EXPECT_THROW((CacheArray<Payload>(0, 4)), std::runtime_error);
    EXPECT_THROW((CacheArray<Payload>(4, 0)), std::runtime_error);
}

/** Property: under random ops, size() matches a reference model. */
TEST(CacheArray, SizeMatchesReferenceModel)
{
    CacheArray<Payload> cache(8, 4);
    Rng rng(99);
    std::size_t inserted_live = 0;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t key = rng.uniformInt(100);
        if (rng.chance(0.7)) {
            bool present = cache.peek(key) != nullptr;
            bool evicted = cache.insert(key, Payload{}).has_value();
            if (!present && !evicted)
                ++inserted_live;
        } else {
            if (cache.erase(key).has_value())
                --inserted_live;
        }
        ASSERT_EQ(cache.size(), inserted_live);
        ASSERT_LE(cache.size(), cache.capacity());
    }
}

// --------------------------------------------------- probe/fillAt handles

TEST(CacheArrayHandle, ProbeHitAndMiss)
{
    CacheArray<Payload> cache(4, 2);
    cache.insert(10, Payload{42});

    auto hit = cache.probe(10);
    ASSERT_TRUE(hit.valid());
    EXPECT_TRUE(hit.hit());
    EXPECT_EQ(cache.at(hit)->value, 42);

    auto miss = cache.probe(14);  // same set as 10, absent
    EXPECT_TRUE(miss.valid());
    EXPECT_FALSE(miss.hit());
}

TEST(CacheArrayHandle, FillAtInstallsLikeInsert)
{
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.find(1);  // key 2 becomes LRU

    auto h = cache.probe(3);
    auto evicted = cache.fillAt(h, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_TRUE(h.hit());  // handle now points at the installed line
    EXPECT_EQ(cache.at(h)->value, 3);
    EXPECT_EQ(cache.find(3)->value, 3);
}

TEST(CacheArrayHandle, StaleAfterEraseFreesWay)
{
    // An erase between probe and fill frees a way; the stale handle
    // must re-walk and prefer the free way over evicting a live line
    // -- exactly what a fresh insert would do.
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});

    auto h = cache.probe(3);     // victim would be key 1 (LRU)
    cache.erase(2);              // way of key 2 becomes free
    auto evicted = cache.fillAt(h, Payload{3});
    EXPECT_FALSE(evicted.has_value());  // took the free way
    EXPECT_GE(cache.rewalks(), 1u);
    EXPECT_NE(cache.find(1), nullptr);  // live line survived
    EXPECT_NE(cache.find(3), nullptr);
}

TEST(CacheArrayHandle, StaleAfterInterveningInsert)
{
    // Another insert between probe and fill consumes the precomputed
    // victim; the handle re-walks and evicts what a fresh insert
    // would (the now-LRU line).
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.find(1);  // LRU order: 2, 1

    auto h = cache.probe(3);              // victim = key 2
    cache.insert(4, Payload{4});          // takes key 2's way
    auto evicted = cache.fillAt(h, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);          // fresh walk's LRU
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_NE(cache.find(4), nullptr);
}

TEST(CacheArrayHandle, StaleAfterVictimTouched)
{
    // A find() that touches the precomputed victim between probe and
    // fill promotes it; the fill must evict the *new* LRU instead.
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});  // LRU order: 1, 2

    auto h = cache.probe(3);      // victim = key 1
    cache.find(1);                // key 1 promoted; key 2 now LRU
    auto evicted = cache.fillAt(h, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
}

TEST(CacheArrayHandle, SurvivesLruRenormalization)
{
    CacheArray<Payload> cache(2, 2);
    cache.insert(1, Payload{1});  // set 1
    cache.insert(2, Payload{2});  // set 0

    auto h = cache.probe(5);  // set 1: one valid line, one free way
    // Force the next touch to renormalize every stamp in the array.
    cache.debugSetUseClock(std::numeric_limits<std::uint32_t>::max());
    cache.find(1);  // triggers renormalization

    // The handle's stamps are all stale now; the fill must re-walk
    // and still behave exactly like a fresh insert.
    auto evicted = cache.fillAt(h, Payload{5});
    EXPECT_FALSE(evicted.has_value());  // set had a free way
    EXPECT_NE(cache.find(5), nullptr);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(2), nullptr);
}

TEST(CacheArrayHandle, WideSetsFallBackToRewalk)
{
    // Associativity beyond Handle::maxWays cannot snapshot the set;
    // fillAt must still behave exactly like insert (via re-walk).
    CacheArray<Payload> cache(1, 8);
    for (int i = 0; i < 8; ++i)
        cache.insert(static_cast<std::uint64_t>(i), Payload{i});
    auto h = cache.probe(100);
    auto evicted = cache.fillAt(h, Payload{100});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 0u);  // true LRU
    EXPECT_NE(cache.find(100), nullptr);
}

/**
 * Property: a probe/touchAt/fillAt client is indistinguishable from a
 * find/insert client, under random interleavings of lookups, inserts,
 * erases, and handle-held fills (including handles held across
 * arbitrary intervening operations on the same sets).
 */
TEST(CacheArrayHandle, RandomizedEquivalenceWithFindInsert)
{
    CacheArray<Payload> viaHandles(8, 4);
    CacheArray<Payload> viaInsert(8, 4);
    Rng rng(2024);

    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng.uniformInt(96);
        int op = static_cast<int>(rng.uniformInt(10));
        if (op < 4) {
            // Lookup through both APIs; identical hit/miss + payload.
            auto h = viaHandles.probe(key);
            Payload *p = viaInsert.find(key);
            ASSERT_EQ(h.hit(), p != nullptr);
            if (h.hit()) {
                ASSERT_EQ(viaHandles.at(h)->value, p->value);
                viaHandles.touchAt(h);
            }
        } else if (op < 7) {
            // Install, with a random number of intervening operations
            // between the probe and its fill.
            auto h = viaHandles.probe(key);
            int extra = static_cast<int>(rng.uniformInt(3));
            for (int e = 0; e < extra; ++e) {
                std::uint64_t other = rng.uniformInt(96);
                if (rng.chance(0.5)) {
                    viaHandles.insert(other, Payload{-1});
                    viaInsert.insert(other, Payload{-1});
                } else {
                    auto ea = viaHandles.erase(other);
                    auto eb = viaInsert.erase(other);
                    ASSERT_EQ(ea.has_value(), eb.has_value());
                }
            }
            int value = static_cast<int>(i);
            auto ea = viaHandles.fillAt(h, Payload{value});
            auto eb = viaInsert.insert(key, Payload{value});
            ASSERT_EQ(ea.has_value(), eb.has_value());
            if (ea) {
                ASSERT_EQ(ea->key, eb->key);
                ASSERT_EQ(ea->payload.value, eb->payload.value);
            }
        } else if (op < 9) {
            auto ea = viaHandles.erase(key);
            auto eb = viaInsert.erase(key);
            ASSERT_EQ(ea.has_value(), eb.has_value());
        } else {
            ASSERT_EQ(viaHandles.size(), viaInsert.size());
        }
    }

    // Final states are identical line for line.
    viaInsert.forEach([&](std::uint64_t key, Payload &p) {
        const Payload *q = viaHandles.peek(key);
        ASSERT_NE(q, nullptr);
        ASSERT_EQ(q->value, p.value);
    });
    ASSERT_EQ(viaHandles.size(), viaInsert.size());
}

// ------------------------------------------------------ packed cache array

TEST(PackedCacheArray, InsertFindEvictMirrorsGeneric)
{
    PackedCacheArray<2> cache(1, 2);
    EXPECT_FALSE(cache.insert(1, 3).has_value());
    EXPECT_FALSE(cache.insert(2, 1).has_value());
    ASSERT_NE(cache.find(1), nullptr);  // key 2 becomes LRU
    auto evicted = cache.insert(3, 2);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_EQ(evicted->payload, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.peek(3).value(), 2u);
    EXPECT_FALSE(cache.peek(2).has_value());
}

TEST(PackedCacheArray, PayloadMutationInPlace)
{
    PackedCacheArray<2> cache(4, 2);
    cache.insert(10, 3);
    auto *entry = cache.find(10);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(PackedCacheArray<2>::payloadOf(*entry), 3u);
    PackedCacheArray<2>::setPayload(*entry, 2);
    EXPECT_EQ(cache.peek(10).value(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(PackedCacheArray, EraseAndClear)
{
    PackedCacheArray<1> cache(4, 4);
    for (std::uint64_t k = 0; k < 10; ++k)
        cache.insert(k, static_cast<std::uint32_t>(k & 1));
    EXPECT_EQ(cache.size(), 10u);
    EXPECT_EQ(cache.erase(3).value(), 1u);
    EXPECT_FALSE(cache.erase(3).has_value());
    EXPECT_EQ(cache.size(), 9u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.peek(0).has_value());
}

TEST(PackedCacheArray, HandleStaleAfterEraseFreesWay)
{
    PackedCacheArray<2> cache(1, 2);
    cache.insert(1, 1);
    cache.insert(2, 2);
    auto h = cache.probe(3);
    cache.erase(2);
    auto evicted = cache.fillAt(h, 3);
    EXPECT_FALSE(evicted.has_value());  // re-walk found the free way
    EXPECT_GE(cache.rewalks(), 1u);
    ASSERT_NE(cache.find(1), nullptr);
    ASSERT_NE(cache.find(3), nullptr);
}

TEST(PackedCacheArray, HandleSurvivesRenormalization)
{
    PackedCacheArray<2> cache(2, 2);
    cache.insert(1, 1);
    auto h = cache.probe(3);
    cache.debugSetUseClock(std::numeric_limits<std::uint32_t>::max());
    cache.find(1);  // renormalizes every stamp
    auto evicted = cache.fillAt(h, 2);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(cache.peek(3).value(), 2u);
    EXPECT_EQ(cache.peek(1).value(), 1u);
}

/** Property: packed probe/fillAt vs packed find/insert equivalence,
 *  and packed vs generic CacheArray LRU equivalence, in one run. */
TEST(PackedCacheArray, RandomizedEquivalenceWithGenericArray)
{
    PackedCacheArray<2> packedHandles(8, 4);
    PackedCacheArray<2> packedInsert(8, 4);
    CacheArray<Payload> generic(8, 4);
    Rng rng(77);

    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng.uniformInt(96);
        std::uint32_t payload =
            static_cast<std::uint32_t>(rng.uniformInt(4));
        int op = static_cast<int>(rng.uniformInt(10));
        if (op < 4) {
            auto h = packedHandles.probe(key);
            auto *pi = packedInsert.find(key);
            Payload *g = generic.find(key);
            ASSERT_EQ(h.hit(), pi != nullptr);
            ASSERT_EQ(h.hit(), g != nullptr);
            if (h.hit())
                packedHandles.touchAt(h);
        } else if (op < 8) {
            auto h = packedHandles.probe(key);
            auto ea = packedHandles.fillAt(h, payload);
            auto eb = packedInsert.insert(key, payload);
            auto eg = generic.insert(
                key, Payload{static_cast<int>(payload)});
            ASSERT_EQ(ea.has_value(), eb.has_value());
            ASSERT_EQ(ea.has_value(), eg.has_value());
            if (ea) {
                ASSERT_EQ(ea->key, eb->key);
                ASSERT_EQ(ea->key, eg->key);
                ASSERT_EQ(ea->payload, eb->payload);
            }
        } else {
            auto ea = packedHandles.erase(key);
            auto eb = packedInsert.erase(key);
            auto eg = generic.erase(key);
            ASSERT_EQ(ea.has_value(), eb.has_value());
            ASSERT_EQ(ea.has_value(), eg.has_value());
        }
        ASSERT_EQ(packedHandles.size(), packedInsert.size());
        ASSERT_EQ(packedHandles.size(), generic.size());
    }
}

/**
 * 64/256-node scaling regression for the 32-bit packed word: keys up
 * to maxKey() round-trip through the compressed tag, one past it
 * panics (always-on, so a too-small geometry can never silently alias
 * tags), and the Table-4 L1/L2 geometries clear the largest block
 * address any workload can generate at the full 256-node machine.
 */
TEST(PackedCacheArray, CompressedTagCeiling)
{
    PackedCacheArray<2> pow2(16, 4);  // tag = key >> 4, 30 bits
    std::uint64_t top = pow2.maxKey();
    EXPECT_EQ(top, (std::uint64_t{1} << 34) - 1);
    EXPECT_FALSE(pow2.insert(top, 3).has_value());
    ASSERT_NE(pow2.find(top), nullptr);
    EXPECT_EQ(pow2.peek(top).value(), 3u);
    {
        PanicGuard guard;
        EXPECT_THROW(pow2.insert(top + 1, 0), std::runtime_error);
    }

    PackedCacheArray<1> odd(3, 2);  // non-pow2 sets: key / 3 path
    std::uint64_t odd_top = odd.maxKey();
    EXPECT_FALSE(odd.insert(odd_top, 1).has_value());
    EXPECT_EQ(odd.peek(odd_top).value(), 1u);
    {
        PanicGuard guard;
        EXPECT_THROW(odd.insert(odd_top + 1, 0), std::runtime_error);
    }

    // The simulated L1/L2 planes, Table-4 geometry: the workload
    // generator lays regions 1 GB apart starting at 1 GB, at most a
    // handful of regions per preset and no node-count-dependent
    // growth, so the top block id stays below 2^30 at every node
    // count while both planes accept keys well past 2^40.
    PackedCacheArray<1> l1(128 * 1024 / 64 / 4, 4);
    PackedCacheArray<2> l2(4 * 1024 * 1024 / 64 / 4, 4);
    constexpr std::uint64_t top_block = (std::uint64_t{1} << 30) - 1;
    EXPECT_GE(l1.maxKey(), top_block);
    EXPECT_GE(l2.maxKey(), top_block);
    EXPECT_FALSE(l2.insert(top_block, 2).has_value());
    EXPECT_EQ(l2.peek(top_block).value(), 2u);
}

} // namespace
} // namespace dsp
