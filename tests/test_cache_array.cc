/**
 * @file
 * Unit tests for the generic set-associative cache array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

struct Payload {
    int value = 0;
};

TEST(CacheArray, InsertAndFind)
{
    CacheArray<Payload> cache(4, 2);
    EXPECT_EQ(cache.capacity(), 8u);
    EXPECT_EQ(cache.size(), 0u);

    cache.insert(10, Payload{42});
    Payload *p = cache.find(10);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(11), nullptr);
}

TEST(CacheArray, InsertOverwritesExistingKey)
{
    CacheArray<Payload> cache(4, 2);
    cache.insert(10, Payload{1});
    auto evicted = cache.insert(10, Payload{2});
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(cache.find(10)->value, 2);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheArray, EvictsLruWithinSet)
{
    CacheArray<Payload> cache(1, 2);  // one set, 2 ways
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.find(1);  // make key 2 the LRU
    auto evicted = cache.insert(3, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_EQ(evicted->payload.value, 2);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
}

TEST(CacheArray, PeekDoesNotRefreshLru)
{
    CacheArray<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.peek(1);  // must NOT protect key 1
    auto evicted = cache.insert(3, Payload{3});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);
}

TEST(CacheArray, SetIndexingIsolatesConflicts)
{
    CacheArray<Payload> cache(4, 1);  // direct mapped, 4 sets
    // Keys 0 and 4 collide (same set); 1 does not.
    cache.insert(0, Payload{0});
    cache.insert(1, Payload{1});
    auto evicted = cache.insert(4, Payload{4});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 0u);
    EXPECT_NE(cache.find(1), nullptr);
}

TEST(CacheArray, EraseRemoves)
{
    CacheArray<Payload> cache(2, 2);
    cache.insert(5, Payload{5});
    auto erased = cache.erase(5);
    ASSERT_TRUE(erased.has_value());
    EXPECT_EQ(erased->value, 5);
    EXPECT_EQ(cache.find(5), nullptr);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.erase(5).has_value());
}

TEST(CacheArray, ForEachVisitsAllValidLines)
{
    CacheArray<Payload> cache(4, 4);
    for (int i = 0; i < 10; ++i)
        cache.insert(static_cast<std::uint64_t>(i), Payload{i});
    int count = 0, sum = 0;
    cache.forEach([&](std::uint64_t, Payload &p) {
        ++count;
        sum += p.value;
    });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(sum, 45);
}

TEST(CacheArray, ClearEmptiesEverything)
{
    CacheArray<Payload> cache(4, 4);
    for (int i = 0; i < 10; ++i)
        cache.insert(static_cast<std::uint64_t>(i), Payload{i});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(cache.find(static_cast<std::uint64_t>(i)), nullptr);
}

TEST(CacheArray, FillsAllWaysBeforeEvicting)
{
    CacheArray<Payload> cache(1, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(cache.insert(static_cast<std::uint64_t>(i),
                                  Payload{i})
                         .has_value());
    EXPECT_TRUE(cache.insert(100, Payload{}).has_value());
}

TEST(CacheArray, ZeroGeometryPanics)
{
    PanicGuard guard;
    EXPECT_THROW((CacheArray<Payload>(0, 4)), std::runtime_error);
    EXPECT_THROW((CacheArray<Payload>(4, 0)), std::runtime_error);
}

/** Property: under random ops, size() matches a reference model. */
TEST(CacheArray, SizeMatchesReferenceModel)
{
    CacheArray<Payload> cache(8, 4);
    Rng rng(99);
    std::size_t inserted_live = 0;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t key = rng.uniformInt(100);
        if (rng.chance(0.7)) {
            bool present = cache.peek(key) != nullptr;
            bool evicted = cache.insert(key, Payload{}).has_value();
            if (!present && !evicted)
                ++inserted_live;
        } else {
            if (cache.erase(key).has_value())
                --inserted_live;
        }
        ASSERT_EQ(cache.size(), inserted_live);
        ASSERT_LE(cache.size(), cache.capacity());
    }
}

} // namespace
} // namespace dsp
