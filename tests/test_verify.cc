/**
 * @file
 * Tests for the runtime coherence oracle (src/verify/): clean runs
 * stay violation-free under every protocol and shard count while the
 * oracle performs real checks; each deliberate protocol mutation is
 * caught with its expected violation kind, with the *identical* first
 * violation at K=1 and K=4 shards; a --stop-at replay bounded just
 * past the violation tick reproduces the same verdict (the minimal
 * -repro contract); and the panic-hook registry runs its hooks once,
 * in order, honoring removal.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/panic_hooks.hh"
#include "system/system.hh"
#include "verify/oracle.hh"
#include "verify/violation.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

SystemParams
oracleParams(ProtocolKind protocol, unsigned shards,
             std::uint64_t measure)
{
    SystemParams params;
    params.nodes = kNodes;
    params.protocol = protocol;
    params.policy = PredictorPolicy::OwnerGroup;
    params.shards = shards;
    params.functionalWarmupMisses = 5000;
    params.warmupInstrPerCpu = measure / 10;
    params.measureInstrPerCpu = measure;
    params.verify.oracle = true;
    return params;
}

/** Run a mutated system to its violation (PanicGuard turns the raise
 *  into a throw) and hand back the process-global last violation. */
verify::Violation
runMutation(verify::Mutation m, ProtocolKind protocol, unsigned shards,
            std::uint64_t measure, Tick stop_at = 0)
{
    auto workload = makeWorkload("barnes", kNodes, 1, 0.25);
    SystemParams params = oracleParams(protocol, shards, measure);
    params.verify.mutation = m;
    params.verify.stopAtTick = stop_at;

    verify::clearLastViolation();
    System system(*workload, params);
    PanicGuard guard;
    try {
        system.run();
    } catch (const std::runtime_error &) {
        // The violation raise; lastViolation() carries the verdict.
    }
    return verify::lastViolation();
}

/**
 * The shared mutation contract: expected kind, bit-identical first
 * violation across shard counts, and a bounded replay (the repro
 * bundle's stop_at = tick + 1) reproducing the same verdict fast.
 */
void
checkMutation(verify::Mutation m, ProtocolKind protocol,
              std::uint64_t measure)
{
    verify::Violation k1 = runMutation(m, protocol, 1, measure);
    ASSERT_EQ(k1.kind, verify::expectedKind(m))
        << "got " << verify::toString(k1.kind);
    EXPECT_GT(k1.tick, 0u);

    verify::Violation k4 = runMutation(m, protocol, 4, measure);
    EXPECT_EQ(k4.kind, k1.kind);
    EXPECT_EQ(k4.block, k1.block);
    EXPECT_EQ(k4.tick, k1.tick);
    EXPECT_EQ(k4.txn, k1.txn);
    EXPECT_EQ(k4.node, k1.node);

    verify::Violation replay =
        runMutation(m, protocol, 1, measure, k1.tick + 1);
    EXPECT_EQ(replay.kind, k1.kind);
    EXPECT_EQ(replay.block, k1.block);
    EXPECT_EQ(replay.tick, k1.tick);
    EXPECT_EQ(replay.txn, k1.txn);
}

// ---- clean runs -----------------------------------------------------------

TEST(VerifyClean, AllProtocolsAndShardCountsPass)
{
    for (ProtocolKind protocol :
         {ProtocolKind::Snooping, ProtocolKind::Directory,
          ProtocolKind::Multicast}) {
        for (unsigned shards : {1u, 4u}) {
            auto workload = makeWorkload("barnes", kNodes, 1, 0.25);
            SystemParams params =
                oracleParams(protocol, shards, 10000);
            verify::clearLastViolation();
            System system(*workload, params);
            PanicGuard guard;
            ASSERT_NO_THROW(system.run())
                << toString(protocol) << " shards=" << shards;
            EXPECT_EQ(verify::lastViolation().kind,
                      verify::ViolationKind::None);
            ASSERT_NE(system.oracle(), nullptr);
            // The oracle really shadowed the run, not just rode along.
            EXPECT_GT(system.oracle()->checksPerformed(), 1000u)
                << toString(protocol) << " shards=" << shards;
        }
    }
}

TEST(VerifyClean, StopAtHaltsEarlyWithoutViolation)
{
    auto workload = makeWorkload("barnes", kNodes, 1, 0.25);
    SystemParams params =
        oracleParams(ProtocolKind::Multicast, 1, 20000);
    params.verify.stopAtTick = 1000000;  // 1 us: mid-warmup
    verify::clearLastViolation();
    System system(*workload, params);
    PanicGuard guard;
    SystemStats stats;
    ASSERT_NO_THROW(stats = system.run());
    EXPECT_TRUE(stats.stoppedEarly);
    EXPECT_EQ(verify::lastViolation().kind,
              verify::ViolationKind::None);
}

// ---- mutation self-tests (one invariant broken per mutation) --------------

TEST(VerifyMutation, DropInvalidationCaught)
{
    checkMutation(verify::Mutation::DropInvalidation,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, StaleOwnerSupplyCaught)
{
    checkMutation(verify::Mutation::StaleOwnerSupply,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, SkipVerdictStampCaught)
{
    checkMutation(verify::Mutation::SkipVerdictStamp,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, SubsetDeliveryCaught)
{
    checkMutation(verify::Mutation::SubsetDelivery,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, ReorderHubGrantsCaught)
{
    checkMutation(verify::Mutation::ReorderHubGrants,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, DuplicateRetryCaught)
{
    // The home re-issues a retry without bumping the attempt number;
    // the oracle's per-transaction monotone-attempt invariant flags
    // the first repeated attempt as a retry-regression. Multicast has
    // real retry round-trips (window-of-vulnerability races), so the
    // mutation binds quickly.
    checkMutation(verify::Mutation::DuplicateRetry,
                  ProtocolKind::Multicast, 20000);
}

TEST(VerifyMutation, StaleDataSupplyCaught)
{
    // Needs a *binding* chained supply bound: a second same-block
    // request ordering within ~(2*half + l2) of a GETX. Snooping
    // broadcasts every request (no retry round-trips to push the
    // follow-up outside the window), so the chain actually binds
    // there; this run length is known to produce one.
    checkMutation(verify::Mutation::StaleDataSupply,
                  ProtocolKind::Snooping, 50000);
}

// ---- vocabulary -----------------------------------------------------------

TEST(VerifyVocab, MutationFlagNamesRoundTrip)
{
    const verify::Mutation all[] = {
        verify::Mutation::DropInvalidation,
        verify::Mutation::StaleOwnerSupply,
        verify::Mutation::SkipVerdictStamp,
        verify::Mutation::SubsetDelivery,
        verify::Mutation::ReorderHubGrants,
        verify::Mutation::StaleDataSupply,
        verify::Mutation::DuplicateRetry,
    };
    for (verify::Mutation m : all) {
        verify::Mutation parsed = verify::Mutation::None;
        ASSERT_TRUE(verify::parseMutation(verify::toString(m), parsed))
            << verify::toString(m);
        EXPECT_EQ(parsed, m);
        // Every mutation maps to a definite expected violation.
        EXPECT_NE(verify::expectedKind(m),
                  verify::ViolationKind::None);
    }
    verify::Mutation parsed = verify::Mutation::None;
    EXPECT_FALSE(verify::parseMutation("no-such-mutation", parsed));
}

// ---- panic-hook registry --------------------------------------------------

TEST(PanicHooks, RunOnceInOrderHonoringRemoval)
{
    // The registry's run-once guard is process-global, so this single
    // test covers order, removal, and the one-shot in one pass (a
    // second test could never observe its hooks running).
    std::vector<std::string> log;
    int a = addPanicHook("test-a", [&log]() { log.push_back("a"); });
    int b = addPanicHook("test-b", [&log]() { log.push_back("b"); });
    int c = addPanicHook("test-c", [&log]() { log.push_back("c"); });
    removePanicHook(c);

    runPanicHooks();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], "a");
    EXPECT_EQ(log[1], "b");

    runPanicHooks();  // one-shot: no re-run
    EXPECT_EQ(log.size(), 2u);

    removePanicHook(a);
    removePanicHook(b);
}

} // namespace
} // namespace dsp
