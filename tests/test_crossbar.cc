/**
 * @file
 * Tests for the totally-ordered crossbar: serialization, latency
 * calibration, bandwidth occupancy, and traffic accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "interconnect/crossbar.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

Message
request(NodeId src, DestinationSet dests, TxnId txn = 1)
{
    Message msg;
    msg.kind = MessageKind::Request;
    msg.txn = txn;
    msg.addr = 0x1000;
    msg.src = src;
    msg.dests = dests;
    return msg;
}

Message
data(NodeId src, NodeId dest)
{
    Message msg;
    msg.kind = MessageKind::Data;
    msg.src = src;
    msg.dest = dest;
    return msg;
}

TEST(Crossbar, OrderedRequestTraversalIs50ns)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    Tick order_tick = 0, deliver_tick = 0;
    xbar.setOrderHandler(
        [&](const MessageRef &, Tick t) { order_tick = t; });
    xbar.setDeliverHandler(
        [&](const Message &, NodeId, Tick t) { deliver_tick = t; });

    xbar.sendOrdered(request(0, DestinationSet::of(5)));
    q.run();
    // Order at 25 ns, delivery at exactly 50 ns when uncontended.
    EXPECT_EQ(order_tick, nsToTicks(25.0));
    EXPECT_EQ(deliver_tick, nsToTicks(50.0));
}

TEST(Crossbar, DirectDataTraversalIs50nsPlusOccupancy)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    Tick deliver_tick = 0;
    xbar.setDeliverHandler(
        [&](const Message &, NodeId, Tick t) { deliver_tick = t; });
    xbar.sendDirect(data(1, 2));
    q.run();
    // Cut-through: 50 ns flight; the 7.2 ns occupancy only delays
    // later messages on the same links.
    EXPECT_EQ(deliver_tick, nsToTicks(50.0));
}

TEST(Crossbar, TotalOrderIsGlobal)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    std::vector<TxnId> order;
    xbar.setOrderHandler(
        [&](const MessageRef &msg, Tick) { order.push_back(msg->txn); });

    // Two requests from different nodes at the same tick: exactly one
    // global order results, and every destination sees both in that
    // order (delivery per destination is FIFO from the order point).
    std::vector<std::pair<TxnId, Tick>> deliveries;
    xbar.setDeliverHandler(
        [&](const Message &msg, NodeId dest, Tick t) {
            if (dest == 7)
                deliveries.push_back({msg.txn, t});
        });

    xbar.sendOrdered(request(0, DestinationSet::all(kNodes), 1));
    xbar.sendOrdered(request(1, DestinationSet::all(kNodes), 2));
    q.run();

    ASSERT_EQ(order.size(), 2u);
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0].first, order[0]);
    EXPECT_EQ(deliveries[1].first, order[1]);
    EXPECT_LE(deliveries[0].second, deliveries[1].second);
}

TEST(Crossbar, SourceIsNeverDelivered)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    bool self_delivery = false;
    xbar.setDeliverHandler(
        [&](const Message &msg, NodeId dest, Tick) {
            self_delivery |= dest == msg.src;
        });
    xbar.sendOrdered(request(3, DestinationSet::all(kNodes)));
    q.run();
    EXPECT_FALSE(self_delivery);
}

TEST(Crossbar, BroadcastReachesAllOthers)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    DestinationSet seen;
    xbar.setDeliverHandler(
        [&](const Message &, NodeId dest, Tick) { seen.add(dest); });
    xbar.sendOrdered(request(3, DestinationSet::all(kNodes)));
    q.run();
    EXPECT_EQ(seen.count(), kNodes - 1);
    EXPECT_FALSE(seen.contains(3));
}

TEST(Crossbar, IngressContentionSerializesDeliveries)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    std::vector<Tick> arrivals;
    xbar.setDeliverHandler(
        [&](const Message &, NodeId dest, Tick t) {
            if (dest == 9)
                arrivals.push_back(t);
        });
    // Ten data messages from distinct sources to one destination:
    // each occupies the 10 GB/s ingress for 7.2 ns.
    for (NodeId src = 0; src < 8; ++src)
        xbar.sendDirect(data(src, 9));
    q.run();
    ASSERT_EQ(arrivals.size(), 8u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        EXPECT_GE(arrivals[i] - arrivals[i - 1],
                  nsToTicks(7.2) - 1);
    }
}

TEST(Crossbar, OrderingPointSpacesBackToBackRequests)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    std::vector<Tick> orders;
    xbar.setOrderHandler(
        [&](const MessageRef &, Tick t) { orders.push_back(t); });
    for (int i = 0; i < 4; ++i)
        xbar.sendOrdered(request(static_cast<NodeId>(i),
                                 DestinationSet::of(15)));
    q.run();
    ASSERT_EQ(orders.size(), 4u);
    for (std::size_t i = 1; i < orders.size(); ++i)
        EXPECT_GT(orders[i], orders[i - 1]);
}

TEST(Crossbar, TrafficAccounting)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    xbar.setDeliverHandler([](const Message &, NodeId, Tick) {});
    DestinationSet three;
    three.add(1);
    three.add(2);
    three.add(3);
    xbar.sendOrdered(request(0, three));
    xbar.sendDirect(data(1, 0));
    q.run();

    EXPECT_EQ(xbar.traffic(MessageKind::Request).messages, 3u);
    EXPECT_EQ(xbar.traffic(MessageKind::Request).bytes,
              3 * requestMessageBytes);
    EXPECT_EQ(xbar.traffic(MessageKind::Data).messages, 1u);
    EXPECT_EQ(xbar.traffic(MessageKind::Data).bytes,
              dataMessageBytes);
    EXPECT_EQ(xbar.totalBytes(),
              3 * requestMessageBytes + dataMessageBytes);

    xbar.resetStats();
    EXPECT_EQ(xbar.totalBytes(), 0u);
}

TEST(Crossbar, MulticastFanOutIsZeroCopy)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);

    // Every delivery must hand back the *same* pooled payload object
    // (no per-destination Message copies), and its bytes must match
    // the original request exactly at every destination.
    Message original = request(3, DestinationSet::all(kNodes), 42);
    original.addr = 0x7c0;
    original.pc = 0x1234;
    original.type = RequestType::GetExclusive;

    std::vector<const Message *> payloads;
    DestinationSet seen;
    xbar.setDeliverHandler(
        [&](const Message &msg, NodeId dest, Tick) {
            payloads.push_back(&msg);
            seen.add(dest);
            EXPECT_EQ(msg.kind, original.kind);
            EXPECT_EQ(msg.txn, original.txn);
            EXPECT_EQ(msg.addr, original.addr);
            EXPECT_EQ(msg.pc, original.pc);
            EXPECT_EQ(msg.type, original.type);
            EXPECT_EQ(msg.src, original.src);
            EXPECT_EQ(msg.dests, original.dests);
            EXPECT_EQ(msg.attempt, original.attempt);
        });

    const MessagePoolStats before = MessageRef::stats();
    xbar.sendOrdered(original);
    q.run();
    const MessagePoolStats after = MessageRef::stats();

    // 15 destinations (everyone but the source), one shared payload.
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kNodes - 1));
    EXPECT_EQ(seen.count(), kNodes - 1);
    for (const Message *p : payloads)
        EXPECT_EQ(p, payloads.front());

    // Pool accounting: exactly one payload entered the pool for the
    // whole fan-out, refs (not copies) covered the deliveries, and
    // the payload was returned once the last delivery ran. Fused hop
    // chains take one ref per chain (up to 8 same-queue deliveries),
    // so the ref count sits between 1 and one-per-destination.
    EXPECT_EQ(after.acquires - before.acquires, 1u);
    EXPECT_EQ(after.releases - before.releases, 1u);
    EXPECT_GE(after.refsShared - before.refsShared, 1u);
    EXPECT_LE(after.refsShared - before.refsShared,
              static_cast<std::uint64_t>(kNodes - 1));
    EXPECT_EQ(after.live(), before.live());
}

TEST(Crossbar, DirectSendPayloadIsPooledAndReleased)
{
    EventQueue q;
    OrderedCrossbar xbar(q, kNodes);
    int deliveries = 0;
    xbar.setDeliverHandler(
        [&](const Message &, NodeId, Tick) { ++deliveries; });

    const MessagePoolStats before = MessageRef::stats();
    xbar.sendDirect(data(1, 2));
    xbar.sendDirect(data(2, 3));
    q.run();
    const MessagePoolStats after = MessageRef::stats();

    EXPECT_EQ(deliveries, 2);
    EXPECT_EQ(after.acquires - before.acquires, 2u);
    EXPECT_EQ(after.releases - before.releases, 2u);
    EXPECT_EQ(after.live(), before.live());
}

TEST(Crossbar, MessageKindMetadata)
{
    EXPECT_TRUE(isOrdered(MessageKind::Request));
    EXPECT_TRUE(isOrdered(MessageKind::Retry));
    EXPECT_FALSE(isOrdered(MessageKind::Data));
    EXPECT_EQ(messageBytes(MessageKind::Data), 72u);
    EXPECT_EQ(messageBytes(MessageKind::Writeback), 72u);
    EXPECT_EQ(messageBytes(MessageKind::Request), 8u);
    EXPECT_EQ(messageBytes(MessageKind::Grant), 8u);
}

// ------------------------------------------------------------- topology

TEST(Topology, FlatDefaultReproducesTable4Legs)
{
    // The degenerate topology is the paper's single-hop crossbar:
    // node leg = traversal/2, no switch tier, one hub.
    Topology topo(16, TopologyParams{}, 50.0);
    EXPECT_TRUE(topo.flat());
    EXPECT_EQ(topo.numClusters(), 1u);
    EXPECT_EQ(topo.hubHop(), nsToTicks(25.0));
    EXPECT_EQ(topo.directHop(0, 15), nsToTicks(50.0));
    EXPECT_EQ(topo.minHop(), nsToTicks(25.0));
    EXPECT_EQ(topo.hubOf(0x123456), 0u);
}

TEST(Topology, HierarchicalLegsAndClusterMembership)
{
    TopologyParams p;
    p.cluster_size = 16;
    p.cluster_link_ns = 10.0;
    p.switch_link_ns = 15.0;
    p.hubs = 4;
    Topology topo(64, p, 50.0);

    EXPECT_FALSE(topo.flat());
    EXPECT_EQ(topo.numClusters(), 4u);
    EXPECT_TRUE(topo.sameCluster(0, 15));
    EXPECT_FALSE(topo.sameCluster(15, 16));
    EXPECT_EQ(topo.clusterOf(63), 3u);

    // Intra-cluster: two node legs. Cross-cluster: two node legs plus
    // two switch legs. Hub distance is uniform (node + switch leg).
    EXPECT_EQ(topo.directHop(0, 15), nsToTicks(20.0));
    EXPECT_EQ(topo.directHop(0, 16), nsToTicks(50.0));
    EXPECT_EQ(topo.hubHop(), nsToTicks(25.0));
    // Lookahead is the cheapest cross-domain path: the intra-cluster
    // direct hop here.
    EXPECT_EQ(topo.minHop(), nsToTicks(20.0));
}

TEST(Topology, HubInterleavingPow2AndModulo)
{
    TopologyParams p4;
    p4.hubs = 4;
    Topology pow2(64, p4, 50.0);
    for (BlockId b = 0; b < 16; ++b)
        EXPECT_EQ(pow2.hubOf(b), b % 4);

    TopologyParams p3;
    p3.hubs = 3;
    Topology mod(64, p3, 50.0);
    for (BlockId b = 0; b < 15; ++b)
        EXPECT_EQ(mod.hubOf(b), b % 3);
}

TEST(Topology, BadGeometryPanics)
{
    PanicGuard guard;
    TopologyParams bad_cluster;
    bad_cluster.cluster_size = 10;  // does not divide 64
    EXPECT_THROW(Topology(64, bad_cluster, 50.0), std::runtime_error);
    TopologyParams bad_hubs;
    bad_hubs.hubs = Topology::maxHubs + 1;
    EXPECT_THROW(Topology(64, bad_hubs, 50.0), std::runtime_error);
}

/**
 * Hierarchical-latency pin (satellite: intra- vs cross-cluster hop
 * costs end to end): point-to-point data inside a cluster pays two
 * node legs; across clusters it adds the two switch legs; ordered
 * requests pay hub-distance twice regardless of cluster.
 */
TEST(Crossbar, HierarchicalLatenciesPinned)
{
    CrossbarParams params;
    params.topology.cluster_size = 8;
    params.topology.cluster_link_ns = 10.0;
    params.topology.switch_link_ns = 15.0;

    {
        EventQueue q;
        OrderedCrossbar xbar(q, 32, params);
        std::vector<std::pair<NodeId, Tick>> deliveries;
        xbar.setDeliverHandler(
            [&](const Message &, NodeId dest, Tick t) {
                deliveries.push_back({dest, t});
            });
        // Distinct sources so neither send queues on an egress link.
        xbar.sendDirect(data(0, 7));   // same cluster
        xbar.sendDirect(data(1, 8));   // crosses clusters
        q.run();
        ASSERT_EQ(deliveries.size(), 2u);
        EXPECT_EQ(deliveries[0].second, nsToTicks(20.0));  // 2*10 ns
        EXPECT_EQ(deliveries[1].second, nsToTicks(50.0));  // +2*15 ns
    }

    {
        EventQueue q;
        OrderedCrossbar xbar(q, 32, params);
        Tick order_tick = 0, deliver_tick = 0;
        xbar.setOrderHandler(
            [&](const MessageRef &, Tick t) { order_tick = t; });
        xbar.setDeliverHandler(
            [&](const Message &, NodeId, Tick t) { deliver_tick = t; });
        xbar.sendOrdered(request(0, DestinationSet::of(1)));
        q.run();
        // Up to the global tier (10 + 15 ns), then back down to the
        // destination: hub distance is uniform over nodes.
        EXPECT_EQ(order_tick, nsToTicks(25.0));
        EXPECT_EQ(deliver_tick, nsToTicks(50.0));
    }
}

/**
 * Address-interleaved ordering points: blocks on different hubs
 * serialize independently (same-tick verdicts), blocks on the same
 * hub space out by the ordering gap -- and a multi-hub flat machine
 * keeps the single-hub uncontended latency.
 */
TEST(Crossbar, MultiHubOrderingIsPerHub)
{
    CrossbarParams params;
    params.topology.hubs = 4;

    EventQueue q;
    OrderedCrossbar xbar(q, kNodes, params);
    std::vector<std::pair<BlockId, Tick>> orders;
    xbar.setOrderHandler(
        [&](const MessageRef &msg, Tick t) {
            orders.push_back({msg->block(), t});
        });
    xbar.setDeliverHandler([](const Message &, NodeId, Tick) {});

    auto to_block = [](BlockId b, NodeId src, TxnId txn) {
        Message msg;
        msg.kind = MessageKind::Request;
        msg.txn = txn;
        msg.addr = blockBase(b);
        msg.src = src;
        msg.dests = DestinationSet::of(15);
        return msg;
    };

    // Blocks 0 and 1 interleave to hubs 0 and 1: both serialize at
    // the uncontended 25 ns. Block 4 shares hub 0 with block 0 and
    // must be spaced behind it.
    xbar.sendOrdered(to_block(0, 0, 1));
    xbar.sendOrdered(to_block(1, 1, 2));
    xbar.sendOrdered(to_block(4, 2, 3));
    q.run();

    ASSERT_EQ(orders.size(), 3u);
    EXPECT_EQ(orders[0].second, nsToTicks(25.0));
    EXPECT_EQ(orders[1].second, nsToTicks(25.0));
    EXPECT_GT(orders[2].second, orders[0].second);
}

} // namespace
} // namespace dsp
