/**
 * @file
 * Tests for the crash-tolerant sweep subsystem: config parsing with
 * substitution/arithmetic/ranges, matrix expansion, the checksummed
 * JSONL journal (truncated tails, corrupt checksums, duplicate rows),
 * the supervised fork pool (retry, watchdog, budget exhaustion, row
 * validation, degradation) driven by the deterministic fault-injection
 * plan, and the headline contract: a fresh sweep and a crash+resumed
 * sweep of the same matrix produce byte-identical aggregate tables.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sweep/config.hh"
#include "sweep/fault_inject.hh"
#include "sweep/journal.hh"
#include "sweep/matrix.hh"
#include "sweep/sim_job.hh"
#include "sweep/supervisor.hh"
#include "verify/violation.hh"

namespace dsp {
namespace sweep {
namespace {

/** Unique scratch path per test (removed by the helper's owner). */
std::string
scratchPath(const std::string &stem)
{
    return testing::TempDir() + "dsp_sweep_" +
           std::to_string(getpid()) + "_" + stem;
}

/** A deterministic fake result row: every figure field is a pure
 *  function of the job id, so resumed reruns reproduce it exactly. */
std::string
fakeRow(const JobSpec &spec)
{
    std::uint64_t h = spec.idHash();
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "{\"job\":\"%s\",\"status\":\"done\",\"instructions\":%llu,"
        "\"misses\":%llu,\"retries\":%llu,\"upgrades\":%llu,"
        "\"cache_to_cache\":%llu,\"traffic_bytes\":%llu,"
        "\"avg_miss_latency_ns\":%.6f,\"runtime_ms\":%.3f,"
        "\"wall_ms\":%.1f}",
        spec.id().c_str(),
        static_cast<unsigned long long>(h % 100000 + 1000),
        static_cast<unsigned long long>(h % 997),
        static_cast<unsigned long long>(h % 31),
        static_cast<unsigned long long>(h % 17),
        static_cast<unsigned long long>(h % 13),
        static_cast<unsigned long long>(h % 65536),
        static_cast<double>(h % 1000) / 7.0,
        static_cast<double>(h % 100) / 3.0, 1.0);
    return row;
}

/** A small four-job matrix over two axes. */
std::vector<JobSpec>
smallMatrix()
{
    SweepConfig config = SweepConfig::fromString("workload = barnes\n"
                                                 "protocol = multicast\n"
                                                 "policy = owner-group\n"
                                                 "nodes = 4\n"
                                                 "seed = 1..2\n"
                                                 "threads = 1, 2\n"
                                                 "warmup_misses = 10\n"
                                                 "warmup_instr = 10\n"
                                                 "measure_instr = 50\n");
    return expandMatrix(config);
}

// ---- config frontend ------------------------------------------------------

TEST(SweepConfig, KeyValueCommentsAndOverride)
{
    SweepConfig c = SweepConfig::fromString("a = 1   # trailing\n"
                                            "# full-line comment\n"
                                            "\n"
                                            "b = hello\n"
                                            "a = 2\n");
    EXPECT_TRUE(c.has("a"));
    EXPECT_FALSE(c.has("missing"));
    EXPECT_EQ(c.value("a"), "2");  // last assignment wins
    EXPECT_EQ(c.value("b"), "hello");
    EXPECT_EQ(c.value("missing", "fallback"), "fallback");
}

TEST(SweepConfig, SubstitutionAndArithmetic)
{
    SweepConfig c = SweepConfig::fromString("nodes = 16\n"
                                            "per_cpu = 2000\n"
                                            "measure = $(per_cpu)*$(nodes)\n"
                                            "half = $(nodes)/2\n"
                                            "nested = $(half)+1\n");
    EXPECT_EQ(c.value("measure"), "32000");
    EXPECT_EQ(c.value("half"), "8");
    EXPECT_EQ(c.valueUnsigned("nested", 0), 9u);
}

TEST(SweepConfig, SubstitutionCycleIsFatal)
{
    PanicGuard guard;
    SweepConfig c = SweepConfig::fromString("a = $(b)\n"
                                            "b = $(a)\n");
    EXPECT_THROW(c.value("a"), std::runtime_error);
}

TEST(SweepConfig, ListsAndRanges)
{
    SweepConfig c = SweepConfig::fromString("seed = 1..4\n"
                                            "mix = a, b , c\n"
                                            "n = 2, 4..6, 9\n");
    EXPECT_EQ(c.values("seed"),
              (std::vector<std::string>{"1", "2", "3", "4"}));
    EXPECT_EQ(c.values("mix"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(c.values("n"),
              (std::vector<std::string>{"2", "4", "5", "6", "9"}));
    PanicGuard guard;
    EXPECT_THROW(c.value("seed"), std::runtime_error);  // not scalar
}

TEST(SweepConfig, ArithmeticRejectsNamesAndDividesByZeroFatally)
{
    double out = 0.0;
    EXPECT_FALSE(evalArithmetic("barnes", out));
    EXPECT_FALSE(evalArithmetic("owner-group", out));
    EXPECT_TRUE(evalArithmetic("3*(2+1)", out));
    EXPECT_DOUBLE_EQ(out, 9.0);
    EXPECT_TRUE(evalArithmetic("-4/2", out));
    EXPECT_DOUBLE_EQ(out, -2.0);
    PanicGuard guard;
    EXPECT_THROW(evalArithmetic("1/0", out), std::runtime_error);
}

TEST(SweepConfig, CanonicalNumbersKeepJobIdsStable)
{
    EXPECT_EQ(canonicalNumber(16.0), "16");
    EXPECT_EQ(canonicalNumber(0.25), "0.25");
    EXPECT_EQ(canonicalNumber(-3.0), "-3");
}

// ---- matrix ---------------------------------------------------------------

TEST(SweepMatrix, ExpandsCrossProductInFixedAxisOrder)
{
    std::vector<JobSpec> jobs = smallMatrix();
    ASSERT_EQ(jobs.size(), 4u);  // 2 seeds x 2 thread counts
    // Axis order is fixed (seed outer, threads inner), independent of
    // key order in the file.
    EXPECT_EQ(jobs[0].seed, 1u);
    EXPECT_EQ(jobs[0].threads, 1u);
    EXPECT_EQ(jobs[1].seed, 1u);
    EXPECT_EQ(jobs[1].threads, 2u);
    EXPECT_EQ(jobs[3].seed, 2u);
    EXPECT_EQ(jobs[3].threads, 2u);
    // Ids are unique, stable and carry every axis.
    EXPECT_NE(jobs[0].id(), jobs[1].id());
    EXPECT_NE(jobs[0].idHash(), jobs[1].idHash());
    EXPECT_NE(jobs[0].id().find("workload=barnes"), std::string::npos);
    EXPECT_NE(jobs[0].id().find("seed=1"), std::string::npos);
}

TEST(SweepMatrix, CheckpointSubdirIsStableAcrossAttempts)
{
    std::vector<JobSpec> jobs = smallMatrix();
    ASSERT_GE(jobs.size(), 2u);

    // A resumed attempt rebuilds its JobSpec from the same matrix and
    // must land in the same subdirectory to find the earlier
    // attempt's snapshots: the path is a pure function of the id.
    JobSpec rebuilt = jobs[0];
    EXPECT_EQ(jobs[0].checkpointSubdir("/tmp/ck"),
              rebuilt.checkpointSubdir("/tmp/ck"));

    // Distinct jobs get distinct directories.
    EXPECT_NE(jobs[0].checkpointSubdir("/tmp/ck"),
              jobs[1].checkpointSubdir("/tmp/ck"));

    // Every non-filename character of the id is flattened to '_':
    // the subdir name itself contains no separators or spaces.
    std::string sub = jobs[0].checkpointSubdir("/tmp/ck");
    ASSERT_EQ(sub.rfind("/tmp/ck/", 0), 0u);
    std::string leaf = sub.substr(std::string("/tmp/ck/").size());
    EXPECT_EQ(leaf.find('/'), std::string::npos);
    EXPECT_EQ(leaf.find('='), std::string::npos);
    EXPECT_EQ(leaf.find(' '), std::string::npos);
    EXPECT_FALSE(leaf.empty());
}

TEST(SweepMatrix, RejectsUnknownProtocol)
{
    PanicGuard guard;
    SweepConfig c = SweepConfig::fromString("protocol = token\n");
    EXPECT_THROW(expandMatrix(c), std::runtime_error);
}

TEST(SweepMatrix, VerifyAxisExpandsAndKeepsOracleOffIdsStable)
{
    SweepConfig c = SweepConfig::fromString("workload = barnes\n"
                                            "verify = off, on\n");
    std::vector<JobSpec> jobs = expandMatrix(c);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].verify, "off");
    EXPECT_EQ(jobs[1].verify, "on");
    // Oracle-off ids predate the verify axis and must stay suffix
    // -free, so pre-existing journals resume and fault-plan hashes
    // keyed on id() are unchanged.
    EXPECT_EQ(jobs[0].id().find("verify"), std::string::npos);
    EXPECT_NE(jobs[1].id().find(" verify=on"), std::string::npos);
    EXPECT_NE(jobs[0].idHash(), jobs[1].idHash());

    // The axis defaults to off when absent.
    SweepConfig plain = SweepConfig::fromString("workload = barnes\n");
    EXPECT_EQ(expandMatrix(plain)[0].verify, "off");

    PanicGuard guard;
    SweepConfig bad = SweepConfig::fromString("verify = maybe\n");
    EXPECT_THROW(expandMatrix(bad), std::runtime_error);
}

// ---- journal --------------------------------------------------------------

TEST(SweepJournal, Crc32KnownVector)
{
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(SweepJournal, FieldExtractionAndRowValidation)
{
    std::string payload =
        "{\"job\":\"j1\",\"status\":\"done\",\"misses\":42}";
    std::string out;
    ASSERT_TRUE(jsonField(payload, "job", out));
    EXPECT_EQ(out, "j1");
    ASSERT_TRUE(jsonField(payload, "misses", out));
    EXPECT_EQ(out, "42");
    EXPECT_FALSE(jsonField(payload, "absent", out));
    EXPECT_TRUE(validRowPayload(payload));
    EXPECT_FALSE(validRowPayload("{\"job\":\"j1\"}"));       // no status
    EXPECT_FALSE(validRowPayload("{\"status\":\"done\"}"));  // no job
    EXPECT_FALSE(validRowPayload("{\"job\":\"j\",\"status\":\"odd\"}"));
    EXPECT_FALSE(validRowPayload("not json"));
}

TEST(SweepJournal, RoundTripAndResumeDedup)
{
    std::string path = scratchPath("roundtrip.jsonl");
    std::remove(path.c_str());
    {
        Journal journal(path, /*fsyncRows=*/false);
        journal.append("{\"job\":\"a\",\"status\":\"failed\"}");
        journal.append("{\"job\":\"b\",\"status\":\"done\",\"misses\":7}");
        journal.append("{\"job\":\"a\",\"status\":\"done\",\"misses\":9}");
    }
    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    EXPECT_EQ(recovery.lines, 3u);
    EXPECT_EQ(recovery.duplicates, 1u);
    EXPECT_EQ(recovery.droppedTail + recovery.droppedCorrupt, 0u);
    ASSERT_EQ(rows.size(), 2u);
    // Job a's later "done" row superseded its "failed" row.
    EXPECT_EQ(rows[0].job, "a");
    EXPECT_EQ(rows[0].status, "done");
    std::string misses;
    ASSERT_TRUE(jsonField(rows[0].payload, "misses", misses));
    EXPECT_EQ(misses, "9");
    std::remove(path.c_str());
}

TEST(SweepJournal, TruncatedTailIsDroppedSilently)
{
    std::string path = scratchPath("truncated.jsonl");
    std::remove(path.c_str());
    {
        Journal journal(path, false);
        journal.append("{\"job\":\"a\",\"status\":\"done\"}");
        journal.append("{\"job\":\"b\",\"status\":\"done\"}");
    }
    // Crash artifact: chop the last line mid-row (newline included).
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 12), 0);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    EXPECT_EQ(recovery.droppedTail, 1u);
    EXPECT_EQ(recovery.droppedCorrupt, 0u);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].job, "a");
    std::remove(path.c_str());
}

TEST(SweepJournal, CorruptInteriorChecksumIsDropped)
{
    std::string path = scratchPath("corrupt.jsonl");
    std::remove(path.c_str());
    {
        Journal journal(path, false);
        journal.append("{\"job\":\"a\",\"status\":\"done\",\"misses\":1}");
        journal.append("{\"job\":\"b\",\"status\":\"done\",\"misses\":2}");
    }
    // Flip one payload byte of the FIRST line: its crc no longer
    // matches, so the row must be dropped as interior corruption.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 9, SEEK_SET);  // inside "a"
    std::fputc('X', f);
    std::fclose(f);

    PanicGuard guard;  // interior corruption warns; keep it quiet-safe
    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    EXPECT_EQ(recovery.droppedCorrupt, 1u);
    EXPECT_EQ(recovery.droppedTail, 0u);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].job, "b");
    std::remove(path.c_str());
}

TEST(SweepJournal, AggregateTableIsOrderIndependent)
{
    JournalRow r1{"{\"job\":\"b\",\"status\":\"done\",\"misses\":5,"
                  "\"traffic_bytes\":10}",
                  "b", "done"};
    JournalRow r2{"{\"job\":\"a\",\"status\":\"done\",\"misses\":3,"
                  "\"traffic_bytes\":20}",
                  "a", "done"};
    JournalRow r3{"{\"job\":\"c\",\"status\":\"failed\"}", "c",
                  "failed"};
    std::string t1 = aggregateTable({r1, r2, r3});
    std::string t2 = aggregateTable({r3, r2, r1});
    EXPECT_EQ(t1, t2);
    EXPECT_NE(t1.find("done   a misses=3"), std::string::npos);
    EXPECT_NE(t1.find("FAILED c"), std::string::npos);
    EXPECT_NE(t1.find("totals jobs=3 done=2 failed=1 misses=8 "
                      "traffic_bytes=30"),
              std::string::npos);
}

// ---- fault plan -----------------------------------------------------------

TEST(SweepFaults, SpecParsingAndDeterminism)
{
    FaultPlan plan =
        FaultPlan::fromSpec("crash=0.25,hang=0.1,garbage=0.05,seed=9");
    EXPECT_DOUBLE_EQ(plan.crash, 0.25);
    EXPECT_DOUBLE_EQ(plan.hang, 0.1);
    EXPECT_DOUBLE_EQ(plan.garbage, 0.05);
    EXPECT_EQ(plan.seed, 9u);
    EXPECT_TRUE(plan.enabled());
    EXPECT_FALSE(FaultPlan::fromSpec("").enabled());

    // Pure function of (hash, attempt, seed): replays identically.
    for (std::uint64_t h : {1ull, 77ull, 123456789ull}) {
        for (unsigned attempt = 1; attempt <= 4; ++attempt) {
            EXPECT_EQ(plan.decide(h, attempt),
                      plan.decide(h, attempt));
        }
    }
    // And actually mixes across attempts/jobs.
    int kinds[4] = {0, 0, 0, 0};
    for (std::uint64_t h = 0; h < 400; ++h)
        ++kinds[static_cast<int>(plan.decide(h, 1))];
    EXPECT_GT(kinds[0], 0);  // none
    EXPECT_GT(kinds[1], 0);  // crash
    EXPECT_GT(kinds[2], 0);  // hang
    EXPECT_GT(kinds[3], 0);  // garbage

    PanicGuard guard;
    EXPECT_THROW(FaultPlan::fromSpec("crash=1.5"), std::runtime_error);
    EXPECT_THROW(FaultPlan::fromSpec("crash=0.9,hang=0.9"),
                 std::runtime_error);
}

// ---- supervisor -----------------------------------------------------------

SupervisorOptions
fastOptions()
{
    SupervisorOptions opt;
    opt.concurrency = 2;
    opt.timeoutSeconds = 10.0;
    opt.maxAttempts = 3;
    opt.backoffSeconds = 0.01;
    opt.fsyncRows = false;
    return opt;
}

TEST(SweepSupervisor, RunsMatrixAndResumes)
{
    std::string path = scratchPath("pool.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = smallMatrix();

    Supervisor supervisor(path, fastOptions());
    SweepSummary first = supervisor.run(jobs, fakeRow, FaultPlan{});
    EXPECT_TRUE(first.allDone());
    EXPECT_EQ(first.completed, jobs.size());
    EXPECT_EQ(first.skipped, 0u);

    // Second run resumes: everything already journaled, zero forks.
    SweepSummary second = supervisor.run(jobs, fakeRow, FaultPlan{});
    EXPECT_TRUE(second.allDone());
    EXPECT_EQ(second.skipped, jobs.size());
    EXPECT_EQ(second.launched, 0u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    EXPECT_EQ(rows.size(), jobs.size());
    // The parent annotates every successful row with its attempt.
    std::string attempt;
    ASSERT_TRUE(jsonField(rows[0].payload, "attempt", attempt));
    EXPECT_EQ(attempt, "1");
    std::remove(path.c_str());
}

TEST(SweepSupervisor, RetriesCrashThenSucceeds)
{
    std::string path = scratchPath("retry.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};
    std::uint64_t h = jobs[0].idHash();

    // Find a seed whose draw crashes attempt 1 but spares attempt 2 --
    // deterministic thereafter.
    FaultPlan plan;
    plan.crash = 0.5;
    for (plan.seed = 1;; ++plan.seed) {
        if (plan.decide(h, 1) == FaultAction::Crash &&
            plan.decide(h, 2) == FaultAction::None)
            break;
    }

    Supervisor supervisor(path, fastOptions());
    SweepSummary summary = supervisor.run(jobs, fakeRow, plan);
    EXPECT_TRUE(summary.allDone());
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_EQ(summary.retries, 1u);
    EXPECT_EQ(summary.launched, 2u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    ASSERT_EQ(rows.size(), 1u);
    std::string attempt;
    ASSERT_TRUE(jsonField(rows[0].payload, "attempt", attempt));
    EXPECT_EQ(attempt, "2");
    std::remove(path.c_str());
}

TEST(SweepSupervisor, RetryBudgetExhaustionRecordsFailedRow)
{
    std::string path = scratchPath("budget.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};

    FaultPlan plan;
    plan.crash = 1.0;  // every attempt dies by SIGABRT

    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 2;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(jobs, fakeRow, plan);
    EXPECT_FALSE(summary.allDone());
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.launched, 2u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, "failed");
    std::string field;
    ASSERT_TRUE(jsonField(rows[0].payload, "attempts", field));
    EXPECT_EQ(field, "2");
    ASSERT_TRUE(jsonField(rows[0].payload, "term_signal", field));
    EXPECT_EQ(field, std::to_string(SIGABRT));
    ASSERT_TRUE(jsonField(rows[0].payload, "reason", field));
    EXPECT_EQ(field, "signal");
    std::remove(path.c_str());
}

TEST(SweepSupervisor, ViolationExitJournalsImmediatelyWithoutRetry)
{
    std::string path = scratchPath("violation.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};

    // A coherence violation terminates the worker with the dedicated
    // exit code. It is deterministic, so the supervisor must journal
    // it on the first attempt instead of burning the retry budget.
    auto violate = [](const JobSpec &) -> std::string {
        std::exit(verify::violationExitCode);
    };

    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 3;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(jobs, violate, FaultPlan{});
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.violations, 1u);
    EXPECT_EQ(summary.launched, 1u);  // no retries burned
    EXPECT_EQ(summary.retries, 0u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, "failed");
    std::string field;
    ASSERT_TRUE(jsonField(rows[0].payload, "reason", field));
    EXPECT_EQ(field, "violation");
    ASSERT_TRUE(jsonField(rows[0].payload, "exit_code", field));
    EXPECT_EQ(field, std::to_string(verify::violationExitCode));
    ASSERT_TRUE(jsonField(rows[0].payload, "attempts", field));
    EXPECT_EQ(field, "1");
    std::remove(path.c_str());
}

TEST(SweepSupervisor, WatchdogKillsHangingWorker)
{
    std::string path = scratchPath("hang.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};

    FaultPlan plan;
    plan.hang = 1.0;

    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 1;
    opt.timeoutSeconds = 0.2;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(jobs, fakeRow, plan);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.timeouts, 1u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    ASSERT_EQ(rows.size(), 1u);
    std::string field;
    ASSERT_TRUE(jsonField(rows[0].payload, "reason", field));
    EXPECT_EQ(field, "timeout");
    ASSERT_TRUE(jsonField(rows[0].payload, "term_signal", field));
    EXPECT_EQ(field, std::to_string(SIGKILL));
    std::remove(path.c_str());
}

TEST(SweepSupervisor, GarbageRowIsRejectedNotJournaled)
{
    std::string path = scratchPath("garbage.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};

    FaultPlan plan;
    plan.garbage = 1.0;  // torn row, clean exit -- validation's job

    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 1;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(jobs, fakeRow, plan);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.invalidRows, 1u);

    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(path, recovery);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, "failed");
    std::string field;
    ASSERT_TRUE(jsonField(rows[0].payload, "reason", field));
    EXPECT_EQ(field, "invalid-row");
    std::remove(path.c_str());
}

TEST(SweepSupervisor, MismatchedJobIdFailsValidation)
{
    std::string path = scratchPath("mismatch.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = {smallMatrix()[0]};

    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 1;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(
        jobs,
        [](const JobSpec &) -> std::string {
            return "{\"job\":\"someone-else\",\"status\":\"done\"}";
        },
        FaultPlan{});
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.invalidRows, 1u);
    std::remove(path.c_str());
}

TEST(SweepSupervisor, RepeatedFaultsDegradeThePool)
{
    std::string path = scratchPath("degrade.jsonl");
    std::remove(path.c_str());
    std::vector<JobSpec> jobs = smallMatrix();

    FaultPlan plan;
    plan.crash = 1.0;

    SupervisorOptions opt = fastOptions();
    opt.concurrency = 3;
    opt.maxAttempts = 1;
    opt.degradeStreak = 2;
    Supervisor supervisor(path, opt);
    SweepSummary summary = supervisor.run(jobs, fakeRow, plan);
    EXPECT_EQ(summary.failed, jobs.size());
    EXPECT_LT(summary.finalConcurrency, 3u);
    std::remove(path.c_str());
}

TEST(SweepSupervisor, FreshAndCrashResumedTablesAreBitIdentical)
{
    // The acceptance criterion. Reference: a fault-free sweep.
    std::vector<JobSpec> jobs = smallMatrix();
    std::string fresh_path = scratchPath("fresh.jsonl");
    std::remove(fresh_path.c_str());
    {
        Supervisor supervisor(fresh_path, fastOptions());
        ASSERT_TRUE(
            supervisor.run(jobs, fakeRow, FaultPlan{}).allDone());
    }
    JournalRecovery recovery;
    std::string fresh_table =
        aggregateTable(readJournal(fresh_path, recovery));

    // Faulted first pass: deterministic crashes/hangs/garbage with a
    // single-attempt budget leave failed rows behind.
    std::string crash_path = scratchPath("crashy.jsonl");
    std::remove(crash_path.c_str());
    FaultPlan plan = FaultPlan::fromSpec(
        "crash=0.4,hang=0.15,garbage=0.2,seed=11");
    SupervisorOptions opt = fastOptions();
    opt.maxAttempts = 1;
    opt.timeoutSeconds = 0.2;
    {
        Supervisor supervisor(crash_path, opt);
        SweepSummary faulted = supervisor.run(jobs, fakeRow, plan);
        // The plan must actually bite, or this test tests nothing.
        ASSERT_GT(faulted.failed + faulted.completed, 0u);
        ASSERT_LT(faulted.completed, jobs.size());
    }

    // Simulate a mid-row writer death on top: truncate the tail.
    std::FILE *f = std::fopen(crash_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    if (size > 8)
        ASSERT_EQ(truncate(crash_path.c_str(), size - 5), 0);

    // Resume fault-free: completes the matrix, superseding failed
    // rows and re-running the truncated one.
    {
        Supervisor supervisor(crash_path, fastOptions());
        SweepSummary resumed =
            supervisor.run(jobs, fakeRow, FaultPlan{});
        ASSERT_TRUE(resumed.allDone());
    }
    std::string resumed_table =
        aggregateTable(readJournal(crash_path, recovery));

    EXPECT_EQ(fresh_table, resumed_table);
    std::remove(fresh_path.c_str());
    std::remove(crash_path.c_str());
}

// ---- end-to-end sim job ---------------------------------------------------

TEST(SweepSimJob, RunsARealSimulationJob)
{
    std::vector<JobSpec> jobs = smallMatrix();
    std::string row = runSimJob(jobs[0]);
    EXPECT_TRUE(validRowPayload(row));
    std::string field;
    ASSERT_TRUE(jsonField(row, "job", field));
    EXPECT_EQ(field, jobs[0].id());
    ASSERT_TRUE(jsonField(row, "status", field));
    EXPECT_EQ(field, "done");
    ASSERT_TRUE(jsonField(row, "instructions", field));
    EXPECT_GT(std::strtoull(field.c_str(), nullptr, 10), 0u);
    ASSERT_TRUE(jsonField(row, "misses", field));

    // Bit-determinism end to end: the row a resumed farm would
    // recompute is byte-for-byte the row the first farm journaled
    // (minus host wall time, which the aggregate excludes).
    std::string again = runSimJob(jobs[0]);
    auto strip = [](std::string s) {
        return s.substr(0, s.find("\"wall_ms\""));
    };
    EXPECT_EQ(strip(row), strip(again));
}

} // namespace
} // namespace sweep
} // namespace dsp
