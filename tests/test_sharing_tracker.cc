/**
 * @file
 * Unit and property tests for the global MOSI sharing tracker.
 */

#include <gtest/gtest.h>

#include "coherence/sharing_tracker.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

constexpr BlockId kBlock = 42;

TEST(SharingTracker, ColdReadFromMemory)
{
    SharingTracker tracker(16);
    auto txn = tracker.apply(kBlock, 3, RequestType::GetShared);
    EXPECT_TRUE(txn.required.empty());
    EXPECT_EQ(txn.responder, invalidNode);
    EXPECT_FALSE(txn.cacheToCache);
    EXPECT_EQ(txn.grantedState, MosiState::Shared);
    EXPECT_EQ(tracker.ownerOf(kBlock), invalidNode);
    EXPECT_TRUE(tracker.sharersOf(kBlock).contains(3));
}

TEST(SharingTracker, ColdWriteFromMemory)
{
    SharingTracker tracker(16);
    auto txn = tracker.apply(kBlock, 5, RequestType::GetExclusive);
    EXPECT_TRUE(txn.required.empty());
    EXPECT_EQ(txn.responder, invalidNode);
    EXPECT_EQ(txn.grantedState, MosiState::Modified);
    EXPECT_EQ(tracker.ownerOf(kBlock), 5u);
    EXPECT_TRUE(tracker.sharersOf(kBlock).empty());
}

TEST(SharingTracker, ReadAfterWriteIsCacheToCache)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    auto txn = tracker.apply(kBlock, 2, RequestType::GetShared);
    EXPECT_EQ(txn.required, DestinationSet::of(1));
    EXPECT_EQ(txn.responder, 1u);
    EXPECT_TRUE(txn.cacheToCache);
    // Owner keeps ownership (M -> O); requester becomes a sharer.
    EXPECT_EQ(tracker.ownerOf(kBlock), 1u);
    EXPECT_TRUE(tracker.sharersOf(kBlock).contains(2));
}

TEST(SharingTracker, WriteInvalidatesOwnerAndSharers)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    tracker.apply(kBlock, 2, RequestType::GetShared);
    tracker.apply(kBlock, 3, RequestType::GetShared);

    auto txn = tracker.apply(kBlock, 4, RequestType::GetExclusive);
    // Must observe: owner (1) and sharers (2, 3).
    DestinationSet expected;
    expected.add(1);
    expected.add(2);
    expected.add(3);
    EXPECT_EQ(txn.required, expected);
    EXPECT_EQ(txn.responder, 1u);
    EXPECT_TRUE(txn.cacheToCache);
    EXPECT_EQ(tracker.ownerOf(kBlock), 4u);
    EXPECT_TRUE(tracker.sharersOf(kBlock).empty());
}

TEST(SharingTracker, UpgradeFromSharedNeedsNoData)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetShared);
    tracker.apply(kBlock, 2, RequestType::GetShared);

    // Node 1 upgrades: it already holds valid data.
    auto txn = tracker.apply(kBlock, 1, RequestType::GetExclusive);
    EXPECT_EQ(txn.responder, 1u);
    EXPECT_FALSE(txn.cacheToCache);
    EXPECT_EQ(txn.required, DestinationSet::of(2));
    EXPECT_EQ(tracker.ownerOf(kBlock), 1u);
}

TEST(SharingTracker, UpgradeFromOwned)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);  // 1 owns M
    tracker.apply(kBlock, 2, RequestType::GetShared);     // 1 -> O
    auto txn = tracker.apply(kBlock, 1, RequestType::GetExclusive);
    EXPECT_EQ(txn.responder, 1u);  // upgrade in place
    EXPECT_EQ(txn.required, DestinationSet::of(2));
}

TEST(SharingTracker, RequiredNeverContainsRequester)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetShared);
    tracker.apply(kBlock, 2, RequestType::GetShared);
    auto txn = tracker.apply(kBlock, 1, RequestType::GetExclusive);
    EXPECT_FALSE(txn.required.contains(1));
}

TEST(SharingTracker, EvictSharedRemovesSharer)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetShared);
    tracker.apply(kBlock, 2, RequestType::GetShared);
    tracker.evictShared(kBlock, 1);
    EXPECT_FALSE(tracker.sharersOf(kBlock).contains(1));
    EXPECT_TRUE(tracker.sharersOf(kBlock).contains(2));
}

TEST(SharingTracker, EvictOwnedReturnsToMemory)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    tracker.evictOwned(kBlock, 1);
    EXPECT_EQ(tracker.ownerOf(kBlock), invalidNode);
    // Next reader is served by memory again.
    auto txn = tracker.apply(kBlock, 2, RequestType::GetShared);
    EXPECT_EQ(txn.responder, invalidNode);
}

TEST(SharingTracker, FullyEvictedBlockIsForgotten)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetShared);
    EXPECT_EQ(tracker.trackedBlocks(), 1u);
    tracker.evictShared(kBlock, 1);
    EXPECT_EQ(tracker.trackedBlocks(), 0u);
}

TEST(SharingTracker, InspectDoesNotMutate)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    auto before = tracker.ownerOf(kBlock);
    auto txn = tracker.inspect(kBlock, 2, RequestType::GetExclusive);
    EXPECT_EQ(txn.responder, 1u);
    EXPECT_EQ(tracker.ownerOf(kBlock), before);
    EXPECT_TRUE(tracker.sharersOf(kBlock).empty());
}

TEST(SharingTracker, HoldersCombineOwnerAndSharers)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    tracker.apply(kBlock, 2, RequestType::GetShared);
    tracker.apply(kBlock, 3, RequestType::GetShared);
    DestinationSet holders = tracker.holdersOf(kBlock);
    EXPECT_TRUE(holders.contains(1));
    EXPECT_TRUE(holders.contains(2));
    EXPECT_TRUE(holders.contains(3));
    EXPECT_EQ(holders.count(), 3u);
}

TEST(SharingTracker, IndependentBlocks)
{
    SharingTracker tracker(16);
    tracker.apply(1, 1, RequestType::GetExclusive);
    tracker.apply(2, 2, RequestType::GetExclusive);
    EXPECT_EQ(tracker.ownerOf(1), 1u);
    EXPECT_EQ(tracker.ownerOf(2), 2u);
}

TEST(SharingTracker, GetsFromOwnerItselfIsDegenerate)
{
    SharingTracker tracker(16);
    tracker.apply(kBlock, 1, RequestType::GetExclusive);
    auto txn = tracker.apply(kBlock, 1, RequestType::GetShared);
    EXPECT_EQ(txn.responder, 1u);
    EXPECT_TRUE(txn.required.empty());
    EXPECT_EQ(txn.grantedState, MosiState::Owned);
}

TEST(SharingTracker, BadRequesterPanics)
{
    SharingTracker tracker(4);
    PanicGuard guard;
    EXPECT_THROW(tracker.apply(kBlock, 4, RequestType::GetShared),
                 std::runtime_error);
}

/**
 * Property sweep: a random request stream maintains the MOSI
 * invariants -- the owner is never in the sharer set, required sets
 * exclude the requester, GETX leaves exactly one holder, and a
 * sufficient-set check for the full-broadcast set always passes.
 */
class TrackerProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrackerProperty, RandomStreamInvariants)
{
    const NodeId nodes = 16;
    SharingTracker tracker(nodes);
    Rng rng(GetParam());

    for (int i = 0; i < 5000; ++i) {
        BlockId block = rng.uniformInt(32);
        NodeId req = static_cast<NodeId>(rng.uniformInt(nodes));
        RequestType type = rng.chance(0.4)
                               ? RequestType::GetExclusive
                               : RequestType::GetShared;

        auto inspect = tracker.inspect(block, req, type);
        auto apply = tracker.apply(block, req, type);
        ASSERT_EQ(inspect.required, apply.required);
        ASSERT_EQ(inspect.responder, apply.responder);

        ASSERT_FALSE(apply.required.contains(req));
        ASSERT_TRUE(
            DestinationSet::all(nodes).containsAll(apply.required));

        NodeId owner = tracker.ownerOf(block);
        DestinationSet sharers = tracker.sharersOf(block);
        if (owner != invalidNode) {
            ASSERT_FALSE(sharers.contains(owner));
        }

        if (type == RequestType::GetExclusive) {
            ASSERT_EQ(owner, req);
            ASSERT_TRUE(sharers.empty());
        } else {
            ASSERT_TRUE(tracker.holdersOf(block).contains(req));
        }

        // Occasional random evictions keep the state space moving.
        if (rng.chance(0.05)) {
            NodeId victim = static_cast<NodeId>(rng.uniformInt(nodes));
            if (tracker.ownerOf(block) == victim)
                tracker.evictOwned(block, victim);
            else
                tracker.evictShared(block, victim);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace dsp
