/**
 * @file
 * Scenario tests for Section 3.3's policy-vs-sharing-pattern claims:
 * each policy is built for a particular sharing archetype, and these
 * tests verify the claimed match on synthetic miss streams with known
 * ground truth:
 *
 *  - Owner "works well for pairwise sharing";
 *  - Broadcast-If-Shared "performs comparably to snooping" on widely
 *    shared data while filtering unshared data;
 *  - Group "should work well ... if the system is logically
 *    partitioned";
 *  - Owner/Group saves GETS bandwidth on stable sharing patterns.
 */

#include <gtest/gtest.h>

#include "analysis/predictor_eval.hh"
#include "sim/rng.hh"
#include "trace/trace.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

TraceRecord
record(Addr addr, NodeId req, RequestType type, std::uint32_t resp,
       DestinationSet required)
{
    TraceRecord r;
    r.addr = addr;
    r.pc = 0x1000;
    r.requester = req;
    r.type = static_cast<std::uint8_t>(type);
    r.responder = resp;
    r.requiredMask = required.mask();
    return r;
}

/** Migratory items bouncing between fixed pairs (2k, 2k+1). */
Trace
pairwiseTrace(std::size_t misses, std::uint64_t seed)
{
    Trace trace;
    trace.numNodes = kNodes;
    trace.workloadName = "pairwise";
    trace.totalInstructions = misses * 100;
    Rng rng(seed);
    // 64 items, each bound to one pair.
    std::vector<NodeId> owner(64);
    for (std::size_t i = 0; i < owner.size(); ++i)
        owner[i] = static_cast<NodeId>((i % 8) * 2);
    for (std::size_t i = 0; i < misses; ++i) {
        std::size_t item = rng.uniformInt(64);
        NodeId cur = owner[item];
        NodeId next = static_cast<NodeId>(cur ^ 1);  // the partner
        Addr addr = 0x100000 + item * blockBytes;
        trace.records.push_back(
            record(addr, next, RequestType::GetExclusive, cur,
                   DestinationSet::of(cur)));
        owner[item] = next;
    }
    trace.warmupRecords = misses / 4;
    return trace;
}

/** Widely-shared read-mostly blocks with periodic writers. */
Trace
wideSharingTrace(std::size_t misses, std::uint64_t seed)
{
    Trace trace;
    trace.numNodes = kNodes;
    trace.workloadName = "wide";
    trace.totalInstructions = misses * 100;
    Rng rng(seed);
    std::vector<NodeId> owner(16, invalidNode);
    std::vector<std::uint64_t> sharers(16, 0);
    for (std::size_t i = 0; i < misses; ++i) {
        std::size_t blockIdx = rng.uniformInt(16);
        Addr addr = 0x200000 + blockIdx * blockBytes;
        NodeId p = static_cast<NodeId>(rng.uniformInt(kNodes));
        if (rng.chance(0.1)) {
            // write: must reach owner + all sharers
            DestinationSet req =
                DestinationSet::fromMask(sharers[blockIdx]);
            if (owner[blockIdx] != invalidNode)
                req.add(owner[blockIdx]);
            req.remove(p);
            std::uint32_t resp =
                owner[blockIdx] == invalidNode
                    ? TraceRecord::memoryResponder
                    : owner[blockIdx];
            if (owner[blockIdx] == p)
                resp = p;
            trace.records.push_back(record(
                addr, p, RequestType::GetExclusive, resp, req));
            owner[blockIdx] = p;
            sharers[blockIdx] = 0;
        } else {
            DestinationSet req;
            std::uint32_t resp = TraceRecord::memoryResponder;
            if (owner[blockIdx] != invalidNode &&
                owner[blockIdx] != p) {
                req.add(owner[blockIdx]);
                resp = owner[blockIdx];
            }
            trace.records.push_back(
                record(addr, p, RequestType::GetShared, resp, req));
            sharers[blockIdx] |= std::uint64_t{1} << p;
        }
    }
    trace.warmupRecords = misses / 4;
    return trace;
}

/** Blocks shared read-write within fixed groups of four nodes. */
Trace
groupTrace(std::size_t misses, std::uint64_t seed)
{
    Trace trace;
    trace.numNodes = kNodes;
    trace.workloadName = "grouped";
    trace.totalInstructions = misses * 100;
    Rng rng(seed);
    std::vector<NodeId> owner(64, invalidNode);
    for (std::size_t i = 0; i < misses; ++i) {
        std::size_t blockIdx = rng.uniformInt(64);
        NodeId group = static_cast<NodeId>(blockIdx % 4);
        NodeId p = static_cast<NodeId>(group * 4 +
                                       rng.uniformInt(4));
        Addr addr = 0x300000 + blockIdx * blockBytes;
        DestinationSet req;
        std::uint32_t resp = TraceRecord::memoryResponder;
        if (owner[blockIdx] != invalidNode && owner[blockIdx] != p) {
            req.add(owner[blockIdx]);
            resp = owner[blockIdx];
        } else if (owner[blockIdx] == p) {
            resp = p;
        }
        trace.records.push_back(
            record(addr, p, RequestType::GetExclusive, resp, req));
        owner[blockIdx] = p;
    }
    trace.warmupRecords = misses / 4;
    return trace;
}

EvalResult
evaluate(const Trace &trace, PredictorPolicy policy)
{
    PredictorEvaluator evaluator(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    config.entries = 8192;
    config.indexing = IndexingMode::Block64;
    return evaluator.evaluatePredictor(trace, policy, config);
}

TEST(PolicyBehavior, OwnerNailsPairwiseSharing)
{
    Trace trace = pairwiseTrace(8000, 3);
    EvalResult owner = evaluate(trace, PredictorPolicy::Owner);
    // Both partners track each other through external GETX: near-zero
    // indirections at barely more than minimal traffic.
    EXPECT_LT(owner.indirectionPct, 3.0);
    EXPECT_LT(owner.requestMessagesPerMiss, 3.1);
}

TEST(PolicyBehavior, OwnerUsesFarLessBandwidthThanBisOnPairs)
{
    Trace trace = pairwiseTrace(8000, 4);
    EvalResult owner = evaluate(trace, PredictorPolicy::Owner);
    EvalResult bis =
        evaluate(trace, PredictorPolicy::BroadcastIfShared);
    // Both predict well, but B-I-S broadcasts shared data: Owner's
    // whole point is doing the same job with a fraction of the
    // traffic (Section 3.3).
    EXPECT_LE(owner.indirectionPct, bis.indirectionPct + 2.0);
    EXPECT_LT(owner.requestMessagesPerMiss,
              bis.requestMessagesPerMiss / 3.0);
}

TEST(PolicyBehavior, BisMatchesBroadcastOnWidelyShared)
{
    Trace trace = wideSharingTrace(8000, 5);
    EvalResult bis =
        evaluate(trace, PredictorPolicy::BroadcastIfShared);
    // Widely-shared data: B-I-S broadcasts nearly everything and so
    // nearly never indirects.
    EXPECT_LT(bis.indirectionPct, 2.0);
    EXPECT_GT(bis.predictedSetSize, 12.0);
}

TEST(PolicyBehavior, OwnerStrugglesOnWideInvalidations)
{
    Trace trace = wideSharingTrace(8000, 6);
    EvalResult owner = evaluate(trace, PredictorPolicy::Owner);
    EvalResult bis =
        evaluate(trace, PredictorPolicy::BroadcastIfShared);
    // Owner can find the owner for reads but cannot cover the sharer
    // set for writes; it must indirect far more often than B-I-S.
    EXPECT_GT(owner.indirectionPct, bis.indirectionPct + 5.0);
}

TEST(PolicyBehavior, GroupConvergesOnPartitions)
{
    Trace trace = groupTrace(12000, 7);
    EvalResult group = evaluate(trace, PredictorPolicy::Group);
    EvalResult bis =
        evaluate(trace, PredictorPolicy::BroadcastIfShared);
    // Group learns the 4-node partitions: few indirections at a
    // fraction of Broadcast-If-Shared's traffic.
    EXPECT_LT(group.indirectionPct, 10.0);
    EXPECT_LT(group.requestMessagesPerMiss,
              bis.requestMessagesPerMiss * 0.55);
    // Predicted sets hover near the group size, not the machine size.
    EXPECT_LT(group.predictedSetSize, 8.0);
}

TEST(PolicyBehavior, OwnerGroupSavesReadBandwidthVsGroup)
{
    // Mixture: group-shared writes plus pairwise reads.
    Trace trace = pairwiseTrace(8000, 8);
    EvalResult group = evaluate(trace, PredictorPolicy::Group);
    EvalResult og = evaluate(trace, PredictorPolicy::OwnerGroup);
    EXPECT_LE(og.requestMessagesPerMiss,
              group.requestMessagesPerMiss + 0.01);
}

TEST(PolicyBehavior, StickySpatialTrailsOwnerGroupOnPairs)
{
    Trace trace = pairwiseTrace(8000, 9);
    EvalResult og = evaluate(trace, PredictorPolicy::OwnerGroup);
    EvalResult sticky =
        evaluate(trace, PredictorPolicy::StickySpatial);
    // Sticky-Spatial only trains from its own responses/retries (the
    // partner's requests teach it nothing) and only sheds stale nodes
    // on replacement -- it cannot beat Owner/Group here.
    EXPECT_LE(og.indirectionPct, sticky.indirectionPct + 1.0);
    EXPECT_LE(og.requestMessagesPerMiss,
              sticky.requestMessagesPerMiss + 0.1);
}

TEST(PolicyBehavior, AnchorsBracketEveryPolicyOnEveryPattern)
{
    for (auto make : {pairwiseTrace, wideSharingTrace, groupTrace}) {
        Trace trace = make(4000, 11);
        EvalResult bcast =
            evaluate(trace, PredictorPolicy::AlwaysBroadcast);
        EvalResult minimal =
            evaluate(trace, PredictorPolicy::AlwaysMinimal);
        for (PredictorPolicy policy : proposedPolicies()) {
            EvalResult r = evaluate(trace, policy);
            // Latency anchor: nothing beats broadcast's 0
            // indirections. There is no corresponding bandwidth
            // anchor: a correct prediction (initial multicast only)
            // can undercut AlwaysMinimal's initial-request-plus-retry
            // total -- prediction can win on BOTH axes at once.
            EXPECT_GE(r.indirectionPct, bcast.indirectionPct);
            EXPECT_LE(r.indirectionPct,
                      minimal.indirectionPct + 1e-9);
            EXPECT_LE(r.requestMessagesPerMiss,
                      bcast.requestMessagesPerMiss + 1e-9);
        }
    }
}

} // namespace
} // namespace dsp
