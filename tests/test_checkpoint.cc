/**
 * @file
 * Tests for deterministic checkpoint/restore (src/checkpoint/,
 * docs/checkpoint.md): a run checkpointed mid-flight and resumed --
 * at the same or a different shard count -- produces figure
 * statistics identical to the uninterrupted run; corrupt and
 * truncated snapshot files are CRC-rejected and quarantined rather
 * than restored; a restore transparently falls back to the newest
 * *valid* snapshot; and the round-trip holds with the coherence
 * oracle armed (shadow state travels in the snapshot).
 *
 * Every byte-equivalence leg compares checkpointing-on against
 * checkpointing-on: each snapshot stop ends a kernel lookahead window,
 * so windowsRun/barrierCrossings legitimately differ from a
 * checkpoint-free run while all figure statistics stay identical.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "system/system.hh"
#include "verify/oracle.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

/** Self-cleaning scratch directory for snapshot files. */
struct TempDir {
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/dsp_ckpt_test_XXXXXX";
        const char *made = ::mkdtemp(buf);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
    }

    ~TempDir()
    {
        if (path.empty())
            return;
        if (DIR *dir = ::opendir(path.c_str())) {
            while (const dirent *entry = ::readdir(dir)) {
                std::string name = entry->d_name;
                if (name == "." || name == "..")
                    continue;
                std::remove((path + "/" + name).c_str());
            }
            ::closedir(dir);
        }
        ::rmdir(path.c_str());
    }
};

/** Snapshot files under `dir`, sorted oldest-first by tick. */
std::vector<std::pair<std::uint64_t, std::string>>
listCheckpoints(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return found;
    while (const dirent *entry = ::readdir(d)) {
        std::string name = entry->d_name;
        if (name.size() <= 9 || name.compare(0, 5, "ckpt_") != 0 ||
            name.compare(name.size() - 4, 4, ".dsp") != 0) {
            continue;
        }
        std::uint64_t tick =
            std::strtoull(name.c_str() + 5, nullptr, 10);
        found.emplace_back(tick, dir + "/" + name);
    }
    ::closedir(d);
    std::sort(found.begin(), found.end());
    return found;
}

/** Flip one byte in the middle of a file (CRC must catch this). */
void
corruptFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_GT(size, 32);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
}

SystemParams
ckptParams(NodeId nodes, unsigned shards, unsigned hubs,
           std::uint64_t measure, const std::string &dir,
           std::uint64_t every)
{
    SystemParams params;
    params.nodes = nodes;
    params.protocol = ProtocolKind::Multicast;
    params.policy = PredictorPolicy::OwnerGroup;
    params.shards = shards;
    params.crossbar.topology.hubs = hubs;
    params.functionalWarmupMisses = 2000;
    params.warmupInstrPerCpu = measure / 10;
    params.measureInstrPerCpu = measure;
    params.checkpoint.every = every;
    params.checkpoint.dir = dir;
    return params;
}

struct RunResult {
    SystemStats stats;
    bool restored = false;
};

RunResult
runOnce(const SystemParams &params)
{
    auto workload =
        makeWorkload("barnes", params.nodes, 1, 0.25);
    System system(*workload, params);
    RunResult r;
    r.stats = system.run();
    r.restored = system.restoredFromCheckpoint();
    return r;
}

/** Every figure-feeding statistic, exactly equal. wallSeconds is the
 *  one legitimately host-dependent field and is excluded. */
void
expectFigureEqual(const SystemStats &a, const SystemStats &b)
{
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.indirections, b.indirections);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.doubleRetries, b.doubleRetries);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.cacheToCache, b.cacheToCache);
    EXPECT_EQ(a.requestMessages, b.requestMessages);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.barrierCrossings, b.barrierCrossings);
    EXPECT_EQ(a.windowsRun, b.windowsRun);
    EXPECT_EQ(a.avgMissLatencyNs, b.avgMissLatencyNs);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_EQ(a.l0Hits, b.l0Hits);
    EXPECT_EQ(a.l0Absorbed, b.l0Absorbed);
    EXPECT_EQ(a.wordTouches, b.wordTouches);
    EXPECT_EQ(a.stoppedEarly, b.stoppedEarly);
}

// Coarse enough that a run writes a handful of snapshots, not
// hundreds (each snapshot serializes every cache array): a 16-node
// 20k-instruction run spans ~200 ms simulated.
constexpr std::uint64_t kEvery = 20000000;  // 20 ms simulated

// ---- flat 16-node machine -------------------------------------------------

TEST(Checkpoint, FlatRestoreBitEquivalentAcrossShardCounts)
{
    TempDir dir;

    // Uninterrupted checkpointing runs at K=1 and K=4 agree (the
    // established cross-shard determinism contract, now with snapshot
    // stops interleaved).
    SystemParams k1 = ckptParams(16, 1, 1, 20000, dir.path, kEvery);
    RunResult full = runOnce(k1);
    EXPECT_FALSE(full.restored);
    auto ckpts = listCheckpoints(dir.path);
    ASSERT_GE(ckpts.size(), 2u)
        << "cadence too coarse: test needs an intermediate snapshot";

    {
        TempDir dir4;
        SystemParams k4 =
            ckptParams(16, 4, 1, 20000, dir4.path, kEvery);
        RunResult full4 = runOnce(k4);
        EXPECT_FALSE(full4.restored);
        expectFigureEqual(full4.stats, full.stats);
    }

    // Resume from the *earliest* snapshot (longest suffix re-run) at
    // the same shard count: byte-identical figures.
    SystemParams resume = k1;
    resume.checkpoint.restore = true;
    resume.checkpoint.restorePath = ckpts.front().second;
    RunResult resumed = runOnce(resume);
    EXPECT_TRUE(resumed.restored);
    expectFigureEqual(resumed.stats, full.stats);

    // Restore under a different shard count: snapshots are taken at
    // quiescent barriers in a canonical order, so a K=1 snapshot
    // resumes under K=4 (and vice versa) with identical figures.
    SystemParams cross = ckptParams(16, 4, 1, 20000, dir.path, kEvery);
    cross.checkpoint.restore = true;
    cross.checkpoint.restorePath = ckpts.front().second;
    RunResult crossed = runOnce(cross);
    EXPECT_TRUE(crossed.restored);
    expectFigureEqual(crossed.stats, full.stats);
}

TEST(Checkpoint, RestoreFallsBackPastCorruptNewest)
{
    TempDir dir;
    SystemParams params = ckptParams(16, 1, 1, 20000, dir.path, kEvery);
    RunResult full = runOnce(params);
    auto ckpts = listCheckpoints(dir.path);
    ASSERT_GE(ckpts.size(), 2u);

    // Torn/corrupt newest snapshot: restore must CRC-reject it,
    // quarantine it, and resume from the next-newest valid one.
    corruptFile(ckpts.back().second);
    SystemParams resume = params;
    resume.checkpoint.restore = true;
    RunResult resumed = runOnce(resume);
    EXPECT_TRUE(resumed.restored);
    expectFigureEqual(resumed.stats, full.stats);

    // The corrupt file was renamed aside for forensics. (Its original
    // name exists again: the resumed run deterministically re-wrote
    // the snapshot at that same tick -- a fresh, valid one.)
    std::string quarantined = ckpts.back().second + ".corrupt";
    struct stat st;
    EXPECT_EQ(::stat(quarantined.c_str(), &st), 0)
        << "corrupt snapshot not quarantined";
}

// ---- hierarchical 64-node, 4-hub machine ----------------------------------

TEST(Checkpoint, HierarchicalRestoreBitEquivalent)
{
    TempDir dir;
    SystemParams k1 = ckptParams(64, 1, 4, 6000, dir.path, kEvery);
    RunResult full = runOnce(k1);
    EXPECT_FALSE(full.restored);
    auto ckpts = listCheckpoints(dir.path);
    ASSERT_GE(ckpts.size(), 1u);

    // K=4 resume of the K=1 snapshot: hub ordering, reorder stash,
    // and per-hub sharing-tracker state all travel in the snapshot.
    SystemParams cross = ckptParams(64, 4, 4, 6000, dir.path, kEvery);
    cross.checkpoint.restore = true;
    cross.checkpoint.restorePath = ckpts.front().second;
    RunResult crossed = runOnce(cross);
    EXPECT_TRUE(crossed.restored);
    expectFigureEqual(crossed.stats, full.stats);
}

// ---- oracle-armed round-trip ----------------------------------------------

TEST(Checkpoint, OracleArmedRoundtrip)
{
    TempDir dir;
    SystemParams params = ckptParams(16, 1, 1, 15000, dir.path, kEvery);
    params.verify.oracle = true;
    RunResult full = runOnce(params);
    ASSERT_GE(listCheckpoints(dir.path).size(), 1u);

    auto ckpts = listCheckpoints(dir.path);
    SystemParams resume = ckptParams(16, 4, 1, 15000, dir.path, kEvery);
    resume.verify.oracle = true;
    resume.checkpoint.restore = true;
    resume.checkpoint.restorePath = ckpts.front().second;

    auto workload = makeWorkload("barnes", 16, 1, 0.25);
    System system(*workload, resume);
    SystemStats stats = system.run();
    EXPECT_TRUE(system.restoredFromCheckpoint());
    expectFigureEqual(stats, full.stats);
    // The oracle genuinely shadowed the resumed suffix.
    ASSERT_NE(system.oracle(), nullptr);
    EXPECT_GT(system.oracle()->checksPerformed(), 0u);
}

// ---- snapshot file format -------------------------------------------------

TEST(CheckpointFile, CorruptAndTruncatedRejectedAndQuarantined)
{
    TempDir dir;
    std::string payload(4096, '\x7e');
    payload += "tail";
    std::string older = ckpt::checkpointPath(dir.path, 100);
    std::string newer = ckpt::checkpointPath(dir.path, 200);
    ASSERT_TRUE(ckpt::writeCheckpointFile(older, payload));
    ASSERT_TRUE(ckpt::writeCheckpointFile(newer, payload));

    // Round-trip is exact.
    std::string back;
    ASSERT_TRUE(ckpt::readCheckpointFile(newer, back));
    EXPECT_EQ(back, payload);
    EXPECT_EQ(ckpt::newestValidCheckpoint(dir.path), newer);

    // A flipped byte fails the CRC and quarantines the file; the
    // older snapshot becomes the newest valid one.
    corruptFile(newer);
    EXPECT_FALSE(ckpt::readCheckpointFile(newer, back));
    EXPECT_EQ(ckpt::newestValidCheckpoint(dir.path), older);
    struct stat st;
    EXPECT_EQ(::stat((newer + ".corrupt").c_str(), &st), 0);

    // A truncated file (torn write without the atomic rename) is
    // rejected too; with nothing valid left the scan reports none.
    ASSERT_EQ(::truncate(older.c_str(), 12), 0);
    EXPECT_FALSE(ckpt::readCheckpointFile(older, back));
    EXPECT_EQ(ckpt::newestValidCheckpoint(dir.path), std::string());
}

TEST(CheckpointFile, PruneKeepsNewestAndNeverCountsCorrupt)
{
    TempDir dir;
    std::string payload(2048, '\x3c');
    std::vector<std::string> paths;
    for (std::uint64_t tick = 100; tick <= 500; tick += 100) {
        paths.push_back(ckpt::checkpointPath(dir.path, tick));
        ASSERT_TRUE(ckpt::writeCheckpointFile(paths.back(), payload));
    }

    // keep == 0 means unlimited: a no-op.
    EXPECT_EQ(ckpt::pruneCheckpoints(dir.path, 0), 0u);
    EXPECT_EQ(listCheckpoints(dir.path).size(), 5u);

    // Corrupt the newest snapshot. Pruning to 2 must quarantine it
    // (it is *not* one of the two kept), keep the newest two valid
    // ones (400, 300), and delete the other two (200, 100) -- a torn
    // newest file can never push the last good snapshots out.
    corruptFile(paths[4]);
    EXPECT_EQ(ckpt::pruneCheckpoints(dir.path, 2), 2u);

    auto left = listCheckpoints(dir.path);
    ASSERT_EQ(left.size(), 2u);
    EXPECT_EQ(left[0].first, 300u);
    EXPECT_EQ(left[1].first, 400u);
    EXPECT_EQ(ckpt::newestValidCheckpoint(dir.path), paths[3]);

    // The corrupt file was renamed aside, not deleted.
    struct stat st;
    EXPECT_EQ(::stat((paths[4] + ".corrupt").c_str(), &st), 0);

    // Already within budget: nothing further to remove.
    EXPECT_EQ(ckpt::pruneCheckpoints(dir.path, 2), 0u);
}

TEST(Checkpoint, KeepCompactsAfterEachWriteAndStillRestores)
{
    TempDir dir;
    SystemParams params = ckptParams(16, 1, 1, 20000, dir.path, kEvery);
    RunResult full = runOnce(params);
    auto all = listCheckpoints(dir.path);
    ASSERT_GE(all.size(), 2u)
        << "cadence too coarse: compaction needs multiple snapshots";

    // Same run with keep=1: only the newest snapshot survives each
    // write, and it is the same newest snapshot the unlimited run
    // left behind (pruning changes nothing about what gets written).
    TempDir kept;
    SystemParams compact =
        ckptParams(16, 1, 1, 20000, kept.path, kEvery);
    compact.checkpoint.keep = 1;
    RunResult compacted = runOnce(compact);
    expectFigureEqual(compacted.stats, full.stats);
    auto remaining = listCheckpoints(kept.path);
    ASSERT_EQ(remaining.size(), 1u);
    EXPECT_EQ(remaining.back().first, all.back().first);

    // The surviving snapshot restores to identical figures.
    SystemParams resume = compact;
    resume.checkpoint.restore = true;
    RunResult resumed = runOnce(resume);
    EXPECT_TRUE(resumed.restored);
    expectFigureEqual(resumed.stats, full.stats);
}

TEST(CheckpointFile, AtomicWriteReplacesWholeFile)
{
    TempDir dir;
    std::string path = dir.path + "/table.txt";
    ASSERT_TRUE(ckpt::atomicWriteFile(path, "first contents\n"));
    ASSERT_TRUE(ckpt::atomicWriteFile(path, "x\n"));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[16] = {};
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    EXPECT_EQ(std::string(buf, n), "x\n");
}

} // namespace
} // namespace dsp
