/**
 * @file
 * Tests for trace records, binary round-tripping, the trace
 * collector's annotations, and the collector/tracker consistency
 * invariant.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "analysis/trace_collector.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

std::string
tempPath(const char *name)
{
    return std::string("/tmp/dsp_test_") + name + ".trace";
}

TEST(TraceRecord, MissInfoConversion)
{
    TraceRecord record;
    record.addr = 0x12345;
    record.pc = 0x888;
    record.requester = 5;
    record.responder = 9;
    record.type =
        static_cast<std::uint8_t>(RequestType::GetExclusive);
    record.requiredMask = 0b1010;

    MissInfo info = record.toMissInfo(kNodes);
    EXPECT_EQ(info.addr, 0x12345u);
    EXPECT_EQ(info.pc, 0x888u);
    EXPECT_EQ(info.requester, 5u);
    EXPECT_EQ(info.responder, 9u);
    EXPECT_EQ(info.type, RequestType::GetExclusive);
    EXPECT_EQ(info.required.mask(), 0b1010u);
    EXPECT_EQ(info.home, homeOf(blockOf(0x12345), kNodes));
}

TEST(TraceRecord, MemoryResponderSentinel)
{
    TraceRecord record;
    record.responder = TraceRecord::memoryResponder;
    EXPECT_EQ(record.toMissInfo(kNodes).responder, invalidNode);
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    Trace trace;
    trace.workloadName = "roundtrip";
    trace.numNodes = kNodes;
    trace.totalInstructions = 123456;
    trace.warmupRecords = 1;
    trace.warmupInstructions = 1000;
    for (int i = 0; i < 5; ++i) {
        TraceRecord r;
        r.addr = 0x1000u * (i + 1);
        r.pc = 0x40u * i;
        r.requester = static_cast<std::uint32_t>(i);
        r.responder = i % 2 ? TraceRecord::memoryResponder
                            : static_cast<std::uint32_t>(i + 1);
        r.requiredMask = static_cast<std::uint64_t>(i);
        trace.records.push_back(r);
    }

    std::string path = tempPath("roundtrip");
    ASSERT_TRUE(writeTrace(trace, path));
    Trace loaded = readTrace(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.workloadName, trace.workloadName);
    EXPECT_EQ(loaded.numNodes, trace.numNodes);
    EXPECT_EQ(loaded.totalInstructions, trace.totalInstructions);
    EXPECT_EQ(loaded.warmupRecords, trace.warmupRecords);
    EXPECT_EQ(loaded.warmupInstructions, trace.warmupInstructions);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded.records[i].addr, trace.records[i].addr);
        EXPECT_EQ(loaded.records[i].responder,
                  trace.records[i].responder);
        EXPECT_EQ(loaded.records[i].requiredMask,
                  trace.records[i].requiredMask);
    }
    EXPECT_EQ(loaded.measuredRecords(), 4u);
    EXPECT_EQ(loaded.measuredInstructions(), 122456u);
}

TEST(TraceIo, MissingFileFatals)
{
    PanicGuard guard;
    EXPECT_THROW(readTrace("/nonexistent/path.trace"),
                 std::runtime_error);
}

TEST(TraceIo, BadMagicFatals)
{
    std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[256] = "not a trace";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);

    PanicGuard guard;
    EXPECT_THROW(readTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

// --------------------------------------------------------- trace collector

TEST(TraceCollector, CollectsRequestedMissCounts)
{
    auto workload = makeWorkload("oltp", kNodes, 1, 0.05);
    TraceCollector collector(*workload);
    Trace trace = collector.collect(200, 300);
    EXPECT_EQ(trace.size(), 500u);
    EXPECT_EQ(trace.warmupRecords, 200u);
    EXPECT_EQ(trace.measuredRecords(), 300u);
    EXPECT_GT(trace.totalInstructions, trace.warmupInstructions);
    EXPECT_EQ(trace.workloadName, "oltp");
}

TEST(TraceCollector, RecordsAreInternallyConsistent)
{
    auto workload = makeWorkload("apache", kNodes, 2, 0.05);
    TraceCollector collector(*workload);
    Trace trace = collector.collect(0, 2000);

    for (const TraceRecord &r : trace.records) {
        ASSERT_LT(r.requester, kNodes);
        // Required set never includes the requester.
        ASSERT_FALSE(r.required().contains(r.requester));
        // A cache responder is always a member of the required set
        // unless the responder is the requester itself (upgrade).
        if (r.responder != TraceRecord::memoryResponder &&
            r.responder != r.requester) {
            ASSERT_TRUE(r.required().contains(r.responder));
        }
    }
}

TEST(TraceCollector, TrackerMatchesCaches)
{
    auto workload = makeWorkload("oltp", kNodes, 3, 0.05);
    TraceCollector collector(*workload);
    std::set<BlockId> touched;
    collector.addMissObserver(
        [&](const TraceRecord &r, const SharingTracker::Transaction &) {
            touched.insert(blockOf(r.addr));
        });
    collector.run(3000);

    // Global invariant: a node holds a block in its L2 iff the
    // tracker believes it is a holder.
    const SharingTracker &tracker = collector.tracker();
    int checked = 0;
    for (BlockId b : touched) {
        DestinationSet holders = tracker.holdersOf(b);
        for (NodeId n = 0; n < kNodes; ++n) {
            MosiState state = collector.caches(n).stateOf(b);
            if (holders.contains(n)) {
                ASSERT_NE(state, MosiState::Invalid)
                    << "node " << n << " block " << b;
                ++checked;
            } else {
                ASSERT_EQ(state, MosiState::Invalid)
                    << "node " << n << " block " << b;
            }
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(TraceCollector, OwnerStatesMatchTracker)
{
    auto workload = makeWorkload("barnes", kNodes, 4, 0.05);
    TraceCollector collector(*workload);
    std::set<BlockId> touched;
    collector.addMissObserver(
        [&](const TraceRecord &r, const SharingTracker::Transaction &) {
            touched.insert(blockOf(r.addr));
        });
    collector.run(2000);

    const SharingTracker &tracker = collector.tracker();
    int owners = 0;
    for (BlockId b : touched) {
        NodeId owner = tracker.ownerOf(b);
        if (owner == invalidNode)
            continue;
        ++owners;
        ASSERT_TRUE(
            isOwnerState(collector.caches(owner).stateOf(b)))
            << "block " << b << " owner " << owner;
    }
    EXPECT_GT(owners, 0);
}

TEST(TraceCollector, RefObserversSeeEveryReference)
{
    auto workload = makeWorkload("ocean", kNodes, 5, 0.05);
    TraceCollector collector(*workload);
    std::uint64_t refs = 0;
    collector.addRefObserver(
        [&](NodeId, const MemRef &) { ++refs; });
    auto stats = collector.run(500);
    EXPECT_EQ(refs, stats.references);
    EXPECT_GE(stats.instructions, stats.references);
    EXPECT_EQ(stats.misses, 500u);
}

TEST(TraceCollector, MaxRefsSafetyValve)
{
    auto workload = makeWorkload("barnes", kNodes, 6, 0.05);
    TraceCollector collector(*workload);
    auto stats = collector.run(1u << 30, /* max_refs */ 1000);
    EXPECT_EQ(stats.references, 1000u);
}

} // namespace
} // namespace dsp
