/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace dsp {
namespace {

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() { order.push_back(2); },
               EventPriority::Controller);
    q.schedule(5, [&]() { order.push_back(1); },
               EventPriority::NetworkOrder);
    q.schedule(5, [&]() { order.push_back(3); },
               EventPriority::Controller);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&q, &seen]() {
        q.scheduleIn(50, [&q, &seen]() { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            q.scheduleIn(10, chain);
    };
    q.scheduleIn(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(100, [&]() { ++fired; });
    std::uint64_t n = q.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, []() {});
    q.run();
    PanicGuard guard;
    EXPECT_THROW(q.schedule(50, []() {}), std::runtime_error);
}

TEST(EventQueue, StepOnEmptyPanics)
{
    EventQueue q;
    PanicGuard guard;
    EXPECT_THROW(q.step(), std::runtime_error);
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() {
        q.schedule(10, [&]() { ++fired; });  // same tick, runs after
    });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), []() {});
    q.run();
    EXPECT_EQ(q.executed(), 10u);
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns)
{
    auto run_once = []() {
        EventQueue q;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i) {
            q.schedule(static_cast<Tick>(i % 7),
                       [&order, i]() { order.push_back(i); });
        }
        q.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(TickConversion, NsRoundTrip)
{
    EXPECT_EQ(nsToTicks(50.0), 50u * ticksPerNs);
    EXPECT_DOUBLE_EQ(ticksToNs(nsToTicks(112.0)), 112.0);
    EXPECT_EQ(nsToTicks(0.5), ticksPerNs / 2);
}

// ---- intrusive events and pools ------------------------------------------

/** Member-style event: records its execution; never pooled. */
struct RecordingEvent final : Event {
    void process() override { log->push_back(id); }
    std::vector<int> *log = nullptr;
    int id = 0;
};

/** Pool-style event, as the interconnect/system message events use. */
struct PooledTestEvent final : Event {
    PooledTestEvent(std::vector<int> *l, int i) : log(l), id(i) {}

    void process() override { log->push_back(id); }

    void
    release() override
    {
        EventPool<PooledTestEvent>::instance().release(this);
    }

    std::vector<int> *log;
    int id;
};

TEST(EventQueueIntrusive, MemberEventRunsAndReschedules)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev;
    ev.log = &log;
    ev.id = 1;

    q.schedule(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    q.run();
    EXPECT_FALSE(ev.scheduled());

    // A member event is reusable after it executed.
    ev.id = 2;
    q.schedule(ev, 20);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueueIntrusive, SameTickSamePriorityRunsInInsertionOrder)
{
    EventQueue q;
    std::vector<int> log;
    // Mix pooled, member, and lambda events at one (tick, priority):
    // execution must follow insertion order exactly.
    auto &pool = EventPool<PooledTestEvent>::instance();
    RecordingEvent member;
    member.log = &log;
    member.id = 2;

    q.schedule(*pool.acquire(&log, 1), 5, EventPriority::Controller);
    q.schedule(member, 5, EventPriority::Controller);
    q.schedule(5, [&log]() { log.push_back(3); },
               EventPriority::Controller);
    q.schedule(*pool.acquire(&log, 4), 5, EventPriority::Controller);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueIntrusive, DescheduleCancelsAndRecyclesPooledEvent)
{
    EventQueue q;
    std::vector<int> log;
    auto &pool = EventPool<PooledTestEvent>::instance();

    PooledTestEvent *cancelled = pool.acquire(&log, 99);
    q.schedule(*cancelled, 10);
    q.schedule(*pool.acquire(&log, 1), 20);

    EventPoolStats before = pool.stats();
    q.deschedule(*cancelled);
    EXPECT_EQ(pool.stats().releases, before.releases + 1);

    // The free list is LIFO: the cancelled slot is reused immediately,
    // proving the cancellation returned it to the pool.
    PooledTestEvent *recycled = pool.acquire(&log, 2);
    EXPECT_EQ(static_cast<void *>(recycled),
              static_cast<void *>(cancelled));
    q.schedule(*recycled, 5);

    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));  // 99 never ran
}

TEST(EventQueueIntrusive, DescheduleMiddleOfHeapKeepsOrdering)
{
    EventQueue q;
    std::vector<int> log;
    auto &pool = EventPool<PooledTestEvent>::instance();

    std::vector<PooledTestEvent *> events;
    for (int i = 0; i < 16; ++i) {
        events.push_back(pool.acquire(&log, i));
        q.schedule(*events.back(), static_cast<Tick>(10 * (i + 1)));
    }
    // Cancel the odd ones, in arbitrary order.
    for (int i = 15; i >= 1; i -= 2)
        q.deschedule(*events[static_cast<std::size_t>(i)]);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
}

TEST(EventPool, SteadyStateSchedulingAllocatesNoSlabs)
{
    EventQueue q;
    // A function pointer gives every schedule below the same pooled
    // event type (lambdas would each get their own pool).
    using Fn = void (*)();
    Fn noop = +[]() {};

    // Warm the pool past the largest wave used below.
    for (Tick t = 0; t < 600; ++t)
        q.schedule(t, noop);
    q.run();

    EventPoolStats before = eventPoolStats();
    constexpr std::uint64_t waves = 100;
    constexpr std::uint64_t perWave = 500;
    for (std::uint64_t w = 0; w < waves; ++w) {
        for (Tick t = 0; t < perWave; ++t)
            q.schedule(q.now() + t, noop);
        q.run();
    }
    EventPoolStats after = eventPoolStats();

    // The acceptance invariant: once pools are warm, the schedule /
    // execute path performs zero heap allocations -- slab count and
    // footprint stay exactly flat while tens of thousands of events
    // cycle through.
    EXPECT_EQ(after.slabAllocations, before.slabAllocations);
    EXPECT_EQ(after.slabBytes, before.slabBytes);
    EXPECT_EQ(after.acquires - before.acquires, waves * perWave);
    EXPECT_EQ(after.live(), before.live());
}

TEST(EventQueueIntrusive, PendingPooledEventsReleasedOnQueueDestruction)
{
    auto &pool = EventPool<PooledTestEvent>::instance();
    std::vector<int> log;
    EventPoolStats before = pool.stats();
    {
        EventQueue q;
        q.schedule(*pool.acquire(&log, 1), 100);
        q.schedule(*pool.acquire(&log, 2), 200);
        // Destroyed with events pending.
    }
    EventPoolStats after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 2u);
    EXPECT_EQ(after.releases - before.releases, 2u);
    EXPECT_TRUE(log.empty());
}

// ---- calendar-queue specifics --------------------------------------------
//
// The queue is a two-level calendar: a ring of per-tick-range buckets
// covering EventQueue::ringHorizon ticks ahead, plus an overflow heap
// for events farther out. These tests straddle that boundary.

constexpr Tick kHorizon = EventQueue::ringHorizon;

TEST(EventQueueCalendar, SameTickOrderAcrossRingAndOverflow)
{
    // Events at one far-future tick land in the overflow heap, migrate
    // into the ring as time advances, and must still run in (priority,
    // insertion) order -- including against an event scheduled at the
    // same tick later, directly into the ring.
    EventQueue q;
    std::vector<int> log;
    const Tick far = 3 * kHorizon + 17;

    q.schedule(far, [&log]() { log.push_back(2); },
               EventPriority::Controller);
    q.schedule(far, [&log]() { log.push_back(3); },
               EventPriority::Controller);
    q.schedule(far, [&log]() { log.push_back(1); },
               EventPriority::NetworkOrder);
    // A stepping stone inside the first window, so the window advances
    // (and the far events migrate) before `far` executes.
    q.schedule(kHorizon / 2, [&q, &log, far]() {
        q.schedule(far, [&log]() { log.push_back(4); },
                   EventPriority::Controller);
    });

    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), far);
}

TEST(EventQueueCalendar, DescheduleInsideAndOutsideHorizon)
{
    EventQueue q;
    std::vector<int> log;
    auto &pool = EventPool<PooledTestEvent>::instance();

    // Near events sit in ring buckets, far events in the overflow
    // heap; deschedule must find and release both.
    PooledTestEvent *near_keep = pool.acquire(&log, 1);
    PooledTestEvent *near_cancel = pool.acquire(&log, 90);
    PooledTestEvent *far_keep = pool.acquire(&log, 2);
    PooledTestEvent *far_cancel = pool.acquire(&log, 91);

    q.schedule(*near_keep, 100);
    q.schedule(*near_cancel, 200);
    q.schedule(*far_cancel, 5 * kHorizon);
    q.schedule(*far_keep, 5 * kHorizon + 1);
    ASSERT_EQ(q.pending(), 4u);

    EventPoolStats before = pool.stats();
    q.deschedule(*near_cancel);
    q.deschedule(*far_cancel);
    EXPECT_EQ(pool.stats().releases, before.releases + 2);
    EXPECT_EQ(q.pending(), 2u);

    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueueCalendar, RingWrapKeepsTimeOrder)
{
    // March time across many ring laps; each event schedules the next
    // one most of a horizon ahead, so the cursor wraps the bucket
    // array repeatedly and buckets are reused lap after lap.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick stride = kHorizon - 3 * EventQueue::bucketWidth;

    std::function<void()> hop = [&]() {
        fired.push_back(q.now());
        if (fired.size() < 40)
            q.scheduleIn(stride, hop);
    };
    q.scheduleIn(stride, hop);
    q.run();

    ASSERT_EQ(fired.size(), 40u);
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], (i + 1) * stride);
}

TEST(EventQueueCalendar, OverflowMigrationPreservesInterleaving)
{
    // Far events one-or-more horizons out interleave with near events
    // exactly by tick, regardless of which plane they started in.
    EventQueue q;
    std::vector<int> log;
    for (int lap = 0; lap < 4; ++lap) {
        Tick base = static_cast<Tick>(lap) * kHorizon;
        q.schedule(base + 7, [&log, lap]() { log.push_back(lap * 2); });
        q.schedule(base + kHorizon / 2,
                   [&log, lap]() { log.push_back(lap * 2 + 1); });
    }
    q.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueCalendar, RunWithLimitLeavesWindowSaneForLaterNearEvents)
{
    // Regression test: run(limit) peeking a far-future overflow event
    // (without executing it) must not advance the calendar window --
    // otherwise events scheduled afterwards at near ticks would land
    // in aliased buckets and execute after the far event, running
    // simulated time backwards.
    EventQueue q;
    std::vector<std::pair<int, Tick>> log;

    q.schedule(10 * kHorizon, [&]() { log.push_back({2, q.now()}); });
    EXPECT_EQ(q.run(1000), 0u);  // peeks the far event, runs nothing
    EXPECT_EQ(q.now(), 1000u);

    q.schedule(2000, [&]() { log.push_back({1, q.now()}); });
    q.run();

    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], (std::pair<int, Tick>{1, 2000}));
    EXPECT_EQ(log[1], (std::pair<int, Tick>{2, 10 * kHorizon}));
}

TEST(EventQueueCalendar, PendingOverflowEventsReleasedOnDestruction)
{
    auto &pool = EventPool<PooledTestEvent>::instance();
    std::vector<int> log;
    EventPoolStats before = pool.stats();
    {
        EventQueue q;
        q.schedule(*pool.acquire(&log, 1), 10);            // ring
        q.schedule(*pool.acquire(&log, 2), 7 * kHorizon);  // overflow
    }
    EventPoolStats after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 2u);
    EXPECT_EQ(after.releases - before.releases, 2u);
    EXPECT_TRUE(log.empty());
}

// ---- run-next buffer ------------------------------------------------------

TEST(EventQueueRunNext, HandlerScheduledChainSkipsTheCalendar)
{
    // A ladder of events, each scheduled from the previous one's
    // handler, is served entirely from the run-next buffer: only the
    // seed (scheduled outside run()) touches a calendar plane, so the
    // whole chain costs exactly one insert and one pop.
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&]() {
        if (++fired < 6)
            q.scheduleIn(5, chain);
    };
    q.schedule(10, chain);
    const std::uint64_t before = q.calendarOps();
    EXPECT_EQ(before, 1u);  // the seed's insert
    q.run();
    EXPECT_EQ(fired, 6);
    EXPECT_EQ(q.executed(), 6u);
    EXPECT_EQ(q.calendarOps(), before + 1);  // ... and its pop
}

TEST(EventQueueRunNext, ParkedEventsCompeteInExactTickOrder)
{
    // Events parked by a handler interleave with calendar events in
    // strict tick order, exactly as if they had been inserted.
    EventQueue q;
    std::vector<int> log;
    q.schedule(30, [&]() { log.push_back(30); });
    q.schedule(10, [&]() {
        q.schedule(40, [&]() { log.push_back(40); });
        q.schedule(20, [&]() { log.push_back(20); });
        log.push_back(10);
    });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{10, 20, 30, 40}));
}

TEST(EventQueueRunNext, OverflowSpillsToCalendarAndKeepsOrder)
{
    // Far more handler-scheduled events than the buffer can seat: the
    // spill path must hand the excess to the calendar planes without
    // perturbing the total order.
    EventQueue q;
    std::vector<int> log;
    q.schedule(5, [&]() {
        // Descending ticks, so every newcomer displaces the back.
        for (int i = 40; i >= 1; --i) {
            q.schedule(static_cast<Tick>(10 * i),
                       [&log, i]() { log.push_back(i); });
        }
    });
    q.run();
    ASSERT_EQ(log.size(), 40u);
    for (int i = 1; i <= 40; ++i)
        EXPECT_EQ(log[static_cast<std::size_t>(i - 1)], i);
}

TEST(EventQueueRunNext, ParkedEventsSurviveRunBoundaries)
{
    // Events parked during one run() stay parked across the window
    // boundary: pending counts, earliest queries, forEachPending, and
    // a later run() all see them as if they sat in a calendar plane.
    EventQueue q;
    std::vector<int> log;
    q.schedule(10, [&]() {
        q.schedule(100, [&]() { log.push_back(100); });
        q.schedule(200, [&]() { log.push_back(200); });
    });
    EXPECT_EQ(q.run(50), 1u);
    EXPECT_EQ(q.pending(), 2u);

    Tick e1 = 0;
    Tick e2 = 0;
    q.earliestTwo(e1, e2);
    EXPECT_EQ(e1, 100u);
    EXPECT_EQ(e2, 200u);

    std::vector<Tick> seen;
    q.forEachPending([&](const Event &, Tick when, std::uint64_t,
                         std::uint16_t) { seen.push_back(when); });
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<Tick>{100, 200}));

    q.run();
    EXPECT_EQ(log, (std::vector<int>{100, 200}));
}

TEST(EventQueueRunNext, DescheduleOfParkedEventRecyclesIt)
{
    // A pooled event cancelled while parked in the run-next buffer is
    // released back to its pool, and the remaining parked events keep
    // their order.
    EventQueue q;
    std::vector<int> log;
    auto &pool = EventPool<PooledTestEvent>::instance();

    PooledTestEvent *cancelled = pool.acquire(&log, 99);
    q.schedule(10, [&]() {
        q.schedule(*pool.acquire(&log, 1), 20);
        q.schedule(*cancelled, 30);
        q.schedule(*pool.acquire(&log, 2), 40);
    });
    EXPECT_EQ(q.run(15), 1u);
    EXPECT_EQ(q.pending(), 3u);

    EventPoolStats before = pool.stats();
    q.deschedule(*cancelled);
    EXPECT_EQ(pool.stats().releases, before.releases + 1);
    EXPECT_EQ(q.pending(), 2u);

    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));  // 99 never ran
}

TEST(EventQueueRunNext, PendingParkedEventsReleasedOnDestruction)
{
    auto &pool = EventPool<PooledTestEvent>::instance();
    std::vector<int> log;
    EventPoolStats before = pool.stats();
    {
        EventQueue q;
        q.schedule(5, [&q, &pool, &log]() {
            q.schedule(*pool.acquire(&log, 1), 50);  // parks
        });
        q.run(10);
    }
    EventPoolStats after = pool.stats();
    EXPECT_EQ(after.acquires - before.acquires, 1u);
    EXPECT_EQ(after.releases - before.releases, 1u);
    EXPECT_TRUE(log.empty());
}

/**
 * Randomized equivalence check: the calendar queue must produce
 * exactly the total order of a reference model that sorts stably by
 * (tick, priority, schedule order) -- the contract the previous
 * heap-based kernel implemented directly. Exercises ring scheduling,
 * overflow scheduling, migration, partial runs, and deschedules in
 * both planes.
 */
TEST(EventQueueCalendar, RandomizedHeapEquivalence)
{
    struct Ref {
        Tick when;
        int prio;
        std::size_t order;
        int id;
    };

    std::mt19937_64 rng(12345);
    const EventPriority prios[] = {
        EventPriority::NetworkOrder, EventPriority::Delivery,
        EventPriority::Controller, EventPriority::Cpu,
        EventPriority::Default,
    };

    EventQueue q;
    std::vector<int> executed;
    std::vector<Ref> refs;
    std::vector<bool> cancelled;
    auto &pool = EventPool<PooledTestEvent>::instance();
    std::vector<std::pair<int, PooledTestEvent *>> live;

    int next_id = 0;
    std::size_t order = 0;
    for (int round = 0; round < 30; ++round) {
        // Schedule a batch: mostly short-horizon, some far beyond it.
        std::uniform_int_distribution<Tick> near_d(0, kHorizon / 2);
        std::uniform_int_distribution<Tick> far_d(kHorizon,
                                                  4 * kHorizon);
        std::uniform_int_distribution<int> prio_d(0, 4);
        std::uniform_int_distribution<int> coin(0, 3);
        for (int i = 0; i < 60; ++i) {
            Tick when =
                q.now() + (coin(rng) == 0 ? far_d(rng) : near_d(rng));
            EventPriority prio =
                prios[static_cast<std::size_t>(prio_d(rng))];
            int id = next_id++;
            auto *ev = pool.acquire(&executed, id);
            q.schedule(*ev, when, prio);
            refs.push_back(
                Ref{when, static_cast<int>(prio), order++, id});
            cancelled.push_back(false);
            live.emplace_back(id, ev);
        }

        // Cancel a random quarter of whatever is still scheduled.
        for (std::size_t i = 0; i < live.size();) {
            if (live[i].second->scheduled() && coin(rng) == 0) {
                q.deschedule(*live[i].second);
                cancelled[static_cast<std::size_t>(live[i].first)] =
                    true;
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        // Run partway, so later rounds schedule into a mid-lap ring.
        // Events that executed were released back to the pool (their
        // slots may already be recycled), so prune by executed id --
        // poking ev->scheduled() on a released slot would be
        // use-after-free.
        q.run(q.now() + kHorizon / 3 + round * 911);
        std::vector<char> ran(static_cast<std::size_t>(next_id), 0);
        for (int id : executed)
            ran[static_cast<std::size_t>(id)] = 1;
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&](const auto &e) {
                                      return ran[static_cast<
                                          std::size_t>(e.first)] != 0;
                                  }),
                   live.end());
    }
    q.run();

    std::vector<Ref> expected;
    for (const Ref &r : refs)
        if (!cancelled[static_cast<std::size_t>(r.id)])
            expected.push_back(r);
    std::sort(expected.begin(), expected.end(),
              [](const Ref &a, const Ref &b) {
                  return std::tie(a.when, a.prio, a.order) <
                         std::tie(b.when, b.prio, b.order);
              });

    ASSERT_EQ(executed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(executed[i], expected[i].id) << "at position " << i;
}

TEST(EventQueueIntrusive, DeterministicAcrossIdenticalRunsUnderPool)
{
    auto run_once = []() {
        EventQueue q;
        std::vector<int> order;
        auto &pool = EventPool<PooledTestEvent>::instance();
        for (int i = 0; i < 200; ++i) {
            if (i % 3 == 0) {
                q.schedule(*pool.acquire(&order, i),
                           static_cast<Tick>(i % 11),
                           EventPriority::Delivery);
            } else {
                q.schedule(static_cast<Tick>(i % 11),
                           [&order, i]() { order.push_back(i); },
                           EventPriority::Delivery);
            }
        }
        q.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace dsp
