/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace dsp {
namespace {

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() { order.push_back(2); },
               EventPriority::Controller);
    q.schedule(5, [&]() { order.push_back(1); },
               EventPriority::NetworkOrder);
    q.schedule(5, [&]() { order.push_back(3); },
               EventPriority::Controller);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&q, &seen]() {
        q.scheduleIn(50, [&q, &seen]() { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            q.scheduleIn(10, chain);
    };
    q.scheduleIn(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(100, [&]() { ++fired; });
    std::uint64_t n = q.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, []() {});
    q.run();
    PanicGuard guard;
    EXPECT_THROW(q.schedule(50, []() {}), std::runtime_error);
}

TEST(EventQueue, StepOnEmptyPanics)
{
    EventQueue q;
    PanicGuard guard;
    EXPECT_THROW(q.step(), std::runtime_error);
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() {
        q.schedule(10, [&]() { ++fired; });  // same tick, runs after
    });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), []() {});
    q.run();
    EXPECT_EQ(q.executed(), 10u);
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns)
{
    auto run_once = []() {
        EventQueue q;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i) {
            q.schedule(static_cast<Tick>(i % 7),
                       [&order, i]() { order.push_back(i); });
        }
        q.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(TickConversion, NsRoundTrip)
{
    EXPECT_EQ(nsToTicks(50.0), 50u * ticksPerNs);
    EXPECT_DOUBLE_EQ(ticksToNs(nsToTicks(112.0)), 112.0);
    EXPECT_EQ(nsToTicks(0.5), ticksPerNs / 2);
}

} // namespace
} // namespace dsp
