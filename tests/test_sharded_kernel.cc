/**
 * @file
 * Tests for the sharded multi-queue kernel: conservative-lookahead
 * cross-shard scheduling, carried-key merge ordering, the K-shard ==
 * 1-shard determinism contract (kernel-level and full-System), and
 * pool hygiene across shard threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/sharded_kernel.hh"
#include "system/system.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

constexpr Tick kLookahead = 1000;

std::vector<unsigned>
twoDomainMap(unsigned shard_of_1, unsigned shard_of_2)
{
    return {0, shard_of_1, shard_of_2};
}

TEST(ShardedKernel, CrossShardMessageAtExactlyTheLookaheadHorizon)
{
    // Domain 1 on shard 0, domain 2 on shard 1. An event executing in
    // domain 1 schedules into domain 2 with a delay of *exactly* the
    // lookahead: the tightest legal cross-shard message. It must be
    // drained at the window boundary and execute at its exact tick.
    ShardedKernel kernel(2, twoDomainMap(0, 1), kLookahead);
    DomainPort p1 = kernel.port(1);
    DomainPort p2 = kernel.port(2);

    Tick fired_at = 0;
    p1.schedule(Tick{500}, [&]() {
        p2.scheduleIn(kLookahead, [&]() { fired_at = p2.now(); });
    });

    bool stopped = kernel.run([] { return false; });
    EXPECT_FALSE(stopped);  // drained, not stopped
    EXPECT_EQ(fired_at, Tick{500} + kLookahead);
    EXPECT_TRUE(kernel.empty());
}

TEST(ShardedKernel, MailboxDrainOrderingVsSameTickLocalEvents)
{
    // Two events land in domain 2 at the same tick and priority: one
    // scheduled locally (by domain 2 itself), one arriving through the
    // cross-shard mailbox from domain 1. The carried key -- (priority,
    // scheduling domain, per-domain sequence) -- must decide the
    // order, not the insertion path: domain 1's key sorts before
    // domain 2's, so the mailbox event runs first even though it was
    // inserted at the window boundary, long after the local one.
    ShardedKernel kernel(2, twoDomainMap(0, 1), kLookahead);
    DomainPort p1 = kernel.port(1);
    DomainPort p2 = kernel.port(2);

    std::vector<int> order;
    const Tick target = 2 * kLookahead;
    p2.schedule(Tick{0}, [&]() {
        p2.schedule(target, [&]() { order.push_back(2); },
                    EventPriority::Delivery);
    });
    p1.schedule(Tick{0}, [&]() {
        p2.schedule(target, [&]() { order.push_back(1); },
                    EventPriority::Delivery);
    });

    kernel.run([] { return false; });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);

    // Priority still dominates the domain byte: a cross-shard
    // NetworkOrder event beats a local Delivery event at the same
    // tick even when its scheduling domain is higher.
    ShardedKernel kernel2(2, twoDomainMap(1, 0), kLookahead);
    DomainPort q1 = kernel2.port(1);  // shard 1
    DomainPort q2 = kernel2.port(2);  // shard 0

    order.clear();
    q2.schedule(Tick{0}, [&]() {
        q2.schedule(target, [&]() { order.push_back(2); },
                    EventPriority::Delivery);
    });
    q1.schedule(Tick{0}, [&]() {
        // Domain 1 runs on shard 1 here; this is a mailbox crossing.
        q2.schedule(target, [&]() { order.push_back(1); },
                    EventPriority::NetworkOrder);
    });
    kernel2.run([] { return false; });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

/**
 * A deterministic multi-domain ping-pong network: every domain, when
 * it executes, forwards a token to the next domain with a
 * domain-dependent delay (always >= lookahead) and logs (tick,
 * domain). The log must be identical for every shard partition.
 */
std::vector<std::vector<std::pair<Tick, int>>>
runTokenNetwork(unsigned shards)
{
    constexpr int kDomains = 6;
    std::vector<unsigned> map(kDomains + 1, 0);
    for (int d = 1; d <= kDomains; ++d)
        map[d] = (d - 1) % shards;
    ShardedKernel kernel(shards, map, kLookahead);

    std::vector<DomainPort> ports;
    for (int d = 1; d <= kDomains; ++d)
        ports.push_back(kernel.port(static_cast<std::uint8_t>(d)));

    // Shard discipline, like the real System: each domain logs only
    // into its own vector (single writer), and a token's state (its
    // id and hop count) travels inside the event captures.
    std::vector<std::vector<std::pair<Tick, int>>> logs(kDomains);

    std::function<void(int, int, int)> hop = [&](int d, int token,
                                                 int count) {
        logs[d].emplace_back(ports[d].now(), token);
        if (count >= 60)
            return;
        int next = (d + token) % kDomains;
        // Delay depends on the token's own path: exercises both
        // same-shard and cross-shard edges, horizon-exact and beyond.
        Tick delay =
            kLookahead + ((count + d) % 3) * (kLookahead / 2);
        ports[next].scheduleIn(delay, [&hop, next, token, count]() {
            hop(next, token, count + 1);
        });
    };

    for (int t = 1; t <= 3; ++t) {
        int d = t - 1;
        ports[d].schedule(Tick{100} * t,
                          [&hop, d, t]() { hop(d, t, 0); });
    }

    kernel.run([] { return false; });
    EXPECT_TRUE(kernel.empty());
    return logs;
}

TEST(ShardedKernel, TokenNetworkIsPartitionIndependent)
{
    auto one = runTokenNetwork(1);
    auto two = runTokenNetwork(2);
    auto three = runTokenNetwork(3);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, three);
}

TEST(ShardedKernel, StopPredicateFinishesTheWindow)
{
    // The stop predicate is only sampled at window boundaries, so all
    // same-window events run even when the flag flips mid-window --
    // the rule that makes the stopping point partition-independent.
    ShardedKernel kernel(2, twoDomainMap(0, 1), kLookahead);
    DomainPort p1 = kernel.port(1);
    DomainPort p2 = kernel.port(2);

    // Touched from two shard threads inside one window: atomics, per
    // the same discipline System uses for its phase flags.
    std::atomic<bool> done{false};
    std::atomic<int> ran{0};
    p1.schedule(Tick{10}, [&]() {
        done.store(true);
        ++ran;
    });
    p2.schedule(Tick{20}, [&]() { ++ran; });  // same window as tick 10
    bool stopped = kernel.run([&] { return done.load(); });
    EXPECT_TRUE(stopped);
    EXPECT_EQ(ran.load(), 2);
}

TEST(ShardedKernel, PoolsDrainToZeroPerShard)
{
    const std::uint64_t live_before = eventPoolStats().live();
    {
        ShardedKernel kernel(4, {0, 0, 1, 2, 3}, kLookahead);
        std::vector<DomainPort> ports;
        for (std::uint8_t d = 1; d <= 4; ++d)
            ports.push_back(kernel.port(d));

        // Fan events across every shard pair; all CallbackEvents are
        // pool-backed, many are allocated on one shard thread and
        // executed (hence recycled) on another.
        std::atomic<int> executions{0};
        for (std::uint8_t d = 0; d < 4; ++d) {
            ports[d].schedule(Tick{100} + d, [&, d]() {
                for (std::uint8_t to = 0; to < 4; ++to) {
                    ports[to].scheduleIn(kLookahead,
                                         [&]() { ++executions; });
                }
            });
        }
        kernel.run([] { return false; });
        EXPECT_EQ(executions.load(), 16);
        EXPECT_TRUE(kernel.empty());
        for (unsigned s = 0; s < kernel.numShards(); ++s)
            EXPECT_EQ(kernel.pending(s), 0u);
    }
    // Every pooled event left every shard's queue and went back to a
    // free list: zero live events across all threads' pools.
    EXPECT_EQ(eventPoolStats().live(), live_before);
}

/**
 * A sparse self-scheduling chain: mostly quiet simulated time with
 * one active domain, every seventh hop poking a second domain. This
 * is the shape quiet-window batching exists for; the run must be
 * bit-identical (event order, window count, crossing count) for
 * every shard partition, with batching collapsing many windows into
 * single crossings.
 */
struct BatchProbe {
    std::vector<std::pair<Tick, int>> log1, log2;
    std::uint64_t windows = 0;
    std::uint64_t crossings = 0;
    std::uint64_t batched = 0;

    bool
    operator==(const BatchProbe &o) const
    {
        return log1 == o.log1 && log2 == o.log2 &&
               windows == o.windows && crossings == o.crossings &&
               batched == o.batched;
    }
};

BatchProbe
runSparseChain(unsigned shards)
{
    ShardedKernel kernel(shards, twoDomainMap(0, shards - 1),
                         kLookahead);
    DomainPort p1 = kernel.port(1);
    DomainPort p2 = kernel.port(2);

    BatchProbe probe;
    std::function<void(int)> hop = [&](int count) {
        probe.log1.emplace_back(p1.now(), count);
        if (count >= 40)
            return;
        if (count % 7 == 6) {
            // Cross-domain poke: truncates any batch in flight at the
            // next sub-boundary, identically for every K.
            int c = count;
            p2.scheduleIn(kLookahead, [&probe, &p2, c]() {
                probe.log2.emplace_back(p2.now(), c);
            });
        }
        p1.scheduleIn(5 * kLookahead,
                      [&hop, count]() { hop(count + 1); });
    };
    p1.schedule(Tick{100}, [&hop]() { hop(0); });

    kernel.run([] { return false; });
    EXPECT_TRUE(kernel.empty());
    probe.windows = kernel.windowsRun();
    probe.crossings = kernel.barrierCrossings();
    probe.batched = kernel.batchedWindows();
    return probe;
}

TEST(ShardedKernel, QuietWindowBatchingIsPartitionIndependent)
{
    BatchProbe one = runSparseChain(1);
    BatchProbe two = runSparseChain(2);
    EXPECT_TRUE(one == two);
    ASSERT_EQ(one.log1.size(), 41u);
    ASSERT_EQ(one.log2.size(), 5u);
    // The chain spans ~200 lookahead windows; batching must have
    // collapsed most of them into far fewer crossings.
    EXPECT_GT(one.batched, 0u);
    EXPECT_LT(one.crossings, one.windows);
}

TEST(ShardedKernel, SingleBarrierCrossingPerBusyWindow)
{
    // A dense two-domain ping-pong (every window has work on both
    // shards) can never batch: crossings ~= windows, i.e. one
    // crossing per window, half of the old kernel's two.
    ShardedKernel kernel(2, twoDomainMap(0, 1), kLookahead);
    DomainPort p1 = kernel.port(1);
    DomainPort p2 = kernel.port(2);

    std::function<void(int)> ping = [&](int n) {
        if (n >= 50)
            return;
        DomainPort &next = (n % 2 == 0) ? p2 : p1;
        next.scheduleIn(kLookahead, [&ping, n]() { ping(n + 1); });
    };
    p1.schedule(Tick{0}, [&ping]() { ping(0); });
    kernel.run([] { return false; });

    EXPECT_GE(kernel.windowsRun(), 50u);
    EXPECT_LE(kernel.barrierCrossings(), kernel.windowsRun() + 2);
}

/** Full-System determinism: the headline invariant of the sharded
 *  kernel. Every emitted figure statistic must be bit-identical
 *  between a 1-shard and a 4-shard run of the same seeded config. */
SystemStats
runMini(unsigned shards, ProtocolKind protocol, bool hub_shard = false)
{
    auto workload = makeWorkload("barnes", 16, /* seed */ 7, 0.25);
    SystemParams params;
    params.nodes = 16;
    params.protocol = protocol;
    params.policy = PredictorPolicy::OwnerGroup;
    params.shards = shards;
    params.hubShard = hub_shard;
    params.functionalWarmupMisses = 2000;
    params.warmupInstrPerCpu = 2000;
    params.measureInstrPerCpu = 6000;
    System system(*workload, params);
    return system.run();
}

void
expectBitIdentical(const SystemStats &a, const SystemStats &b)
{
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.indirections, b.indirections);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.doubleRetries, b.doubleRetries);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.cacheToCache, b.cacheToCache);
    EXPECT_EQ(a.requestMessages, b.requestMessages);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    // Integer tick arithmetic end to end: even the derived double
    // must match exactly.
    EXPECT_EQ(a.avgMissLatencyNs, b.avgMissLatencyNs);
}

TEST(ShardedKernel, SystemK4BitIdenticalToK1Multicast)
{
    SystemStats k1 = runMini(1, ProtocolKind::Multicast);
    SystemStats k4 = runMini(4, ProtocolKind::Multicast);
    ASSERT_GT(k1.misses, 100u);
    expectBitIdentical(k1, k4);
}

TEST(ShardedKernel, SystemK4BitIdenticalToK1Snooping)
{
    SystemStats k1 = runMini(1, ProtocolKind::Snooping);
    SystemStats k4 = runMini(4, ProtocolKind::Snooping);
    ASSERT_GT(k1.misses, 100u);
    expectBitIdentical(k1, k4);
}

TEST(ShardedKernel, SystemOddShardCountsAreIdenticalToo)
{
    SystemStats k1 = runMini(1, ProtocolKind::Multicast);
    SystemStats k3 = runMini(3, ProtocolKind::Multicast);
    expectBitIdentical(k1, k3);
}

TEST(ShardedKernel, SystemHubShardPlacementIsIdentical)
{
    // A dedicated hub shard is pure placement: the carried-key
    // contract makes its statistics bit-identical to the default
    // partition at every K (including K < 3, where the flag is
    // ignored).
    SystemStats k1 = runMini(1, ProtocolKind::Multicast);
    SystemStats k4hub = runMini(4, ProtocolKind::Multicast, true);
    SystemStats k3hub = runMini(3, ProtocolKind::Multicast, true);
    expectBitIdentical(k1, k4hub);
    expectBitIdentical(k1, k3hub);
}

TEST(ShardedKernel, SystemRunLeavesNoLiveEvents)
{
    const std::uint64_t live_before = eventPoolStats().live();
    const std::uint64_t msg_live_before = MessageRef::stats().live();
    runMini(4, ProtocolKind::Multicast);
    EXPECT_EQ(eventPoolStats().live(), live_before);
    EXPECT_EQ(MessageRef::stats().live(), msg_live_before);
}

TEST(ShardedKernel, ProgressWatchdogPanicsOnStalledCrossings)
{
    // injectStallForTest freezes the watchdog's executed-events
    // baseline, so a run with plenty of pending work presents exactly
    // like a wedged kernel: crossings advance, observed progress does
    // not. After the (lowered) crossing limit the planner must dump
    // diagnostics and panic instead of spinning forever.
    PanicGuard guard;
    ShardedKernel kernel(1, twoDomainMap(0, 0), kLookahead);
    kernel.injectStallForTest(3);
    DomainPort p1 = kernel.port(1);

    // Enough events, one lookahead apart, that the queue stays
    // nonempty past the watchdog limit even with window batching
    // (<= 16 windows per crossing).
    int fired = 0;
    for (Tick t = 100; t < 100 + 100 * kLookahead; t += kLookahead)
        p1.schedule(t, [&]() { ++fired; });

    try {
        kernel.run([] { return false; });
        FAIL() << "stalled kernel did not panic";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("sharded kernel stalled"),
                  std::string::npos);
        EXPECT_NE(what.find("3 barrier crossings"),
                  std::string::npos);
    }
    EXPECT_GT(fired, 0);  // the kernel really was executing work
}

TEST(ShardedKernel, ProgressWatchdogStaysQuietOnHealthyRuns)
{
    // The real watchdog (no freeze) must never fire on a healthy
    // workload, even with a threshold of a single crossing --
    // every crossing with work pending executes at least one event.
    ShardedKernel kernel(1, twoDomainMap(0, 0), kLookahead);
    kernel.setStallLimitForTest(1);
    DomainPort p1 = kernel.port(1);
    int fired = 0;
    for (Tick t = 100; t < 100 + 40 * kLookahead; t += kLookahead)
        p1.schedule(t, [&]() { ++fired; });
    EXPECT_FALSE(kernel.run([] { return false; }));
    EXPECT_EQ(fired, 40);
}

} // namespace
} // namespace dsp
