/**
 * @file
 * Unit tests for PredictorTable: finite sizing invariants (requested
 * capacity is never silently shrunk), allocation/eviction accounting,
 * and the unbounded (flat-map backed) variant.
 */

#include <gtest/gtest.h>

#include "core/predictor_table.hh"

namespace dsp {
namespace {

struct Entry {
    int value = 0;
};

TEST(PredictorTable, CapacityNeverBelowRequestedEntries)
{
    // 10 entries 4-way used to floor to 2 sets = capacity 8; the set
    // count must round up instead.
    PredictorTable<Entry> t(10, 4);
    EXPECT_FALSE(t.unbounded());
    EXPECT_GE(t.capacity(), 10u);
    EXPECT_EQ(t.capacity(), 12u);  // 3 sets x 4 ways

    PredictorTable<Entry> exact(8192, 4);
    EXPECT_EQ(exact.capacity(), 8192u);

    PredictorTable<Entry> prime(13, 4);
    EXPECT_GE(prime.capacity(), 13u);

    // ways > entries clamps to fully-associative over `entries`.
    PredictorTable<Entry> clamped(3, 8);
    EXPECT_EQ(clamped.capacity(), 3u);
}

TEST(PredictorTable, FindNeverAllocates)
{
    PredictorTable<Entry> t(16, 4);
    EXPECT_EQ(t.find(1), nullptr);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.allocations(), 0u);
    EXPECT_EQ(t.lookups(), 1u);
    EXPECT_EQ(t.hits(), 0u);
}

TEST(PredictorTable, FindOrAllocateFillsAndEvicts)
{
    // 4 entries, 2 ways -> 2 sets.
    PredictorTable<Entry> t(4, 2);
    for (std::uint64_t k = 0; k < 4; ++k)
        t.findOrAllocate(k).value = static_cast<int>(k);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.allocations(), 4u);
    EXPECT_EQ(t.evictions(), 0u);

    // A fifth key lands in some set and evicts its LRU way.
    t.findOrAllocate(4).value = 4;
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.evictions(), 1u);
    Entry *entry = t.find(4);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->value, 4);
}

TEST(PredictorTable, UnboundedVariantGrowsWithoutEviction)
{
    PredictorTable<Entry> t(0, 0);
    EXPECT_TRUE(t.unbounded());
    EXPECT_EQ(t.capacity(), 0u);
    for (std::uint64_t k = 0; k < 5000; ++k)
        t.findOrAllocate(k).value = static_cast<int>(k);
    EXPECT_EQ(t.size(), 5000u);
    EXPECT_EQ(t.evictions(), 0u);
    for (std::uint64_t k = 0; k < 5000; ++k) {
        Entry *entry = t.find(k);
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry->value, static_cast<int>(k));
    }
    EXPECT_EQ(t.hits(), 5000u);
}

} // namespace
} // namespace dsp
