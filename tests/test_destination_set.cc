/**
 * @file
 * Unit and property tests for DestinationSet.
 */

#include <gtest/gtest.h>

#include <iterator>

#include "mem/destination_set.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

TEST(DestinationSet, StartsEmpty)
{
    DestinationSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_FALSE(s.contains(0));
}

TEST(DestinationSet, AddRemoveContains)
{
    DestinationSet s;
    s.add(3);
    s.add(7);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(5));
    EXPECT_EQ(s.count(), 2u);
    s.remove(3);
    EXPECT_FALSE(s.contains(3));
    EXPECT_EQ(s.count(), 1u);
}

TEST(DestinationSet, AllCoversExactlyNNodes)
{
    // Whole-word, partial-word, and boundary node counts, up to the
    // full 256-node machine.
    for (NodeId n : {1u, 4u, 16u, 63u, 64u, 65u, 127u, 128u, 129u,
                     255u, 256u}) {
        DestinationSet s = DestinationSet::all(n);
        EXPECT_EQ(s.count(), n);
        for (NodeId i = 0; i < n; ++i)
            EXPECT_TRUE(s.contains(i));
        if (n < maxNodes) {
            EXPECT_FALSE(s.contains(n));
        }
    }
}

TEST(DestinationSet, SingletonOf)
{
    DestinationSet s = DestinationSet::of(9);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_TRUE(s.contains(9));
}

TEST(DestinationSet, UnionIntersectionMinus)
{
    DestinationSet a = DestinationSet::fromMask(0b1010);
    DestinationSet b = DestinationSet::fromMask(0b0110);
    EXPECT_EQ((a | b).mask(), 0b1110u);
    EXPECT_EQ((a & b).mask(), 0b0010u);
    EXPECT_EQ(a.minus(b).mask(), 0b1000u);
}

TEST(DestinationSet, ContainsAllSemantics)
{
    DestinationSet big = DestinationSet::fromMask(0b1111);
    DestinationSet small = DestinationSet::fromMask(0b0101);
    EXPECT_TRUE(big.containsAll(small));
    EXPECT_FALSE(small.containsAll(big));
    EXPECT_TRUE(small.containsAll(DestinationSet{}));
    EXPECT_TRUE(small.containsAll(small));
}

TEST(DestinationSet, ForEachVisitsAscending)
{
    DestinationSet s = DestinationSet::fromMask(0b101001);
    std::vector<NodeId> visited;
    s.forEach([&](NodeId n) { visited.push_back(n); });
    EXPECT_EQ(visited, (std::vector<NodeId>{0, 3, 5}));
}

TEST(DestinationSet, ToStringIsReadable)
{
    DestinationSet s;
    EXPECT_EQ(s.toString(), "{}");
    s.add(1);
    s.add(12);
    EXPECT_EQ(s.toString(), "{1,12}");
}

TEST(DestinationSet, OutOfRangePanics)
{
    DestinationSet s;
    PanicGuard guard;
    EXPECT_THROW(s.add(maxNodes), std::runtime_error);
    EXPECT_THROW(DestinationSet::all(0), std::runtime_error);
    EXPECT_THROW(DestinationSet::all(maxNodes + 1),
                 std::runtime_error);
}

TEST(DestinationSet, WordBoundaryMembership)
{
    // Nodes straddling every 64-bit word boundary of the backing
    // array land in the right word with the right shift.
    DestinationSet s;
    const NodeId probes[] = {0,   31,  63,  64,  65,  127,
                             128, 191, 192, 254, 255};
    for (NodeId n : probes)
        s.add(n);
    EXPECT_EQ(s.count(), std::size(probes));
    for (NodeId n : probes)
        EXPECT_TRUE(s.contains(n));
    EXPECT_FALSE(s.contains(62));
    EXPECT_FALSE(s.contains(66));
    EXPECT_FALSE(s.contains(129));
    for (NodeId n : probes) {
        s.remove(n);
        EXPECT_FALSE(s.contains(n));
    }
    EXPECT_TRUE(s.empty());
}

TEST(DestinationSet, ForEachCrossesWords)
{
    DestinationSet s;
    std::vector<NodeId> expect{5, 63, 64, 130, 200, 255};
    for (NodeId n : expect)
        s.add(n);
    std::vector<NodeId> visited;
    s.forEach([&](NodeId n) { visited.push_back(n); });
    EXPECT_EQ(visited, expect);
    EXPECT_EQ(s.toString(), "{5,63,64,130,200,255}");
}

TEST(DestinationSet, WideSetAlgebra)
{
    // Set operations over high words, where a uint64 mask cannot
    // represent the members.
    DestinationSet a = DestinationSet::all(256);
    DestinationSet b;
    b.add(10);
    b.add(100);
    b.add(250);
    EXPECT_TRUE(a.containsAll(b));
    EXPECT_FALSE(b.containsAll(a));
    EXPECT_EQ((a & b), b);
    EXPECT_EQ((a | b), a);
    DestinationSet rest = a.minus(b);
    EXPECT_EQ(rest.count(), 253u);
    EXPECT_FALSE(rest.contains(100));
    EXPECT_TRUE(rest.contains(99));
    EXPECT_TRUE(rest.contains(255));
    EXPECT_EQ((rest | b), a);
}

TEST(DestinationSet, MaskRoundTripsLowWord)
{
    // mask() remains the legacy <= 64-node interchange format (trace
    // files, predictor training words); it must round-trip fromMask
    // and reject sets with members above node 63.
    DestinationSet s = DestinationSet::fromMask(0x8000000000000001ull);
    EXPECT_EQ(s.mask(), 0x8000000000000001ull);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(63));
    s.add(64);
    PanicGuard guard;
    EXPECT_THROW(s.mask(), std::runtime_error);
}

/** Property sweep over random sets: algebraic identities hold. */
class SetAlgebra : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SetAlgebra, Identities)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        DestinationSet a = DestinationSet::fromMask(rng.next());
        DestinationSet b = DestinationSet::fromMask(rng.next());

        // union is commutative and contains both operands
        EXPECT_EQ((a | b), (b | a));
        EXPECT_TRUE((a | b).containsAll(a));
        EXPECT_TRUE((a | b).containsAll(b));

        // minus removes exactly the intersection
        EXPECT_EQ(a.minus(b).count() + (a & b).count(), a.count());
        EXPECT_TRUE((a.minus(b) & b).empty());

        // containsAll is equivalent to union absorption
        EXPECT_EQ(a.containsAll(b), (a | b) == a);

        // count matches forEach cardinality
        unsigned n = 0;
        a.forEach([&](NodeId) { ++n; });
        EXPECT_EQ(n, a.count());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace dsp
