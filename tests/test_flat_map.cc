/**
 * @file
 * Unit tests for the open-addressing FlatMap/FlatSet, including a
 * randomized differential test against std::unordered_map and the
 * bounded-capacity-under-churn property the simulator's transaction
 * and MSHR tables rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(42), m.end());
    EXPECT_FALSE(m.contains(42));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    m[7] = 70;
    m[0] = 1;  // key 0 is a valid key, not a sentinel
    auto [it, inserted] = m.try_emplace(9);
    EXPECT_TRUE(inserted);
    it->second = 90;

    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.find(7)->second, 70);
    EXPECT_EQ(m.find(0)->second, 1);
    EXPECT_EQ(m.find(9)->second, 90);

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_EQ(m.size(), 2u);

    // Erased keys can return.
    m[7] = 71;
    EXPECT_EQ(m.find(7)->second, 71);
}

TEST(FlatMap, EmplaceDoesNotOverwrite)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.emplace(5, 50).second);
    EXPECT_FALSE(m.emplace(5, 99).second);
    EXPECT_EQ(m.find(5)->second, 50);
}

TEST(FlatMap, IterationVisitsEveryLiveElementOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::uint64_t expected_sum = 0;
    for (std::uint64_t k = 0; k < 100; ++k) {
        m[k * 977] = k;
        expected_sum += k;
    }
    m.erase(0 * 977);
    m.erase(50 * 977);
    expected_sum -= 0 + 50;

    std::uint64_t sum = 0;
    std::size_t count = 0;
    for (const auto &kv : m) {
        sum += kv.second;
        ++count;
    }
    EXPECT_EQ(count, m.size());
    EXPECT_EQ(sum, expected_sum);
}

TEST(FlatMap, SurvivesRehash)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 10000; ++k)
        m[k] = k * 3;
    EXPECT_EQ(m.size(), 10000u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        ASSERT_NE(m.find(k), m.end());
        EXPECT_EQ(m.find(k)->second, k * 3);
    }
}

TEST(FlatMap, ChurnDoesNotGrowCapacityUnboundedly)
{
    // Insert/erase steady state (the transaction table pattern): the
    // table must rebuild in place when tombstones accumulate, not
    // double forever.
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        m[i] = i;
        if (i >= 16)
            m.erase(i - 16);
    }
    EXPECT_EQ(m.size(), 16u);
    EXPECT_LE(m.capacity(), 256u);
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap)
{
    Rng rng(123);
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (int op = 0; op < 200000; ++op) {
        std::uint64_t key = rng.uniformInt(512);
        switch (rng.uniformInt(3)) {
          case 0: {
            std::uint64_t value = rng.next();
            flat[key] = value;
            ref[key] = value;
            break;
          }
          case 1:
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
            break;
          default: {
            auto fit = flat.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(fit == flat.end(), rit == ref.end());
            if (rit != ref.end())
                ASSERT_EQ(fit->second, rit->second);
            break;
          }
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (const auto &kv : ref) {
        auto it = flat.find(kv.first);
        ASSERT_NE(it, flat.end());
        EXPECT_EQ(it->second, kv.second);
    }
}

TEST(FlatMap, ClearResetsButKeepsCapacity)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = 1;
    std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), m.end());
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    std::size_t cap = m.capacity();
    EXPECT_GE(cap, 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k] = 1;
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatSet, InsertAndContains)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(3));
    EXPECT_FALSE(s.insert(3));
    EXPECT_TRUE(s.insert(4));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(5));
    s.clear();
    EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace dsp
