/**
 * @file
 * Tests for the logging/error helpers, including the test-only
 * panic-to-exception redirection used across the suite.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/logging.hh"

namespace dsp {
namespace {

TEST(Logging, FormatStringBasics)
{
    EXPECT_EQ(detail::formatString("plain"), "plain");
    EXPECT_EQ(detail::formatString("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(detail::formatString("%.2f", 3.14159), "3.14");
}

TEST(Logging, FormatStringLongOutput)
{
    std::string big(5000, 'a');
    EXPECT_EQ(detail::formatString("%s", big.c_str()), big);
}

TEST(Logging, PanicThrowsUnderGuard)
{
    PanicGuard guard;
    EXPECT_TRUE(panicThrowsForTest());
    try {
        dsp_panic("bad thing %d", 7);
        FAIL() << "panic did not throw";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("panic"), std::string::npos);
        EXPECT_NE(what.find("bad thing 7"), std::string::npos);
    }
}

TEST(Logging, FatalThrowsUnderGuard)
{
    PanicGuard guard;
    try {
        dsp_fatal("user error: %s", "nope");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("fatal"), std::string::npos);
        EXPECT_NE(what.find("nope"), std::string::npos);
    }
}

TEST(Logging, GuardNestsAndRestores)
{
    EXPECT_FALSE(panicThrowsForTest());
    {
        PanicGuard outer;
        {
            PanicGuard inner;
            EXPECT_TRUE(panicThrowsForTest());
        }
        EXPECT_TRUE(panicThrowsForTest());
    }
    EXPECT_FALSE(panicThrowsForTest());
}

TEST(Logging, AssertPassesOnTrue)
{
    dsp_assert(1 + 1 == 2, "arithmetic works");
}

TEST(Logging, AssertThrowsOnFalseUnderGuard)
{
    PanicGuard guard;
    EXPECT_THROW(dsp_assert(false, "value was %d", 3),
                 std::runtime_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    dsp_warn("test warning %d", 1);
    dsp_inform("test info %s", "ok");
}

} // namespace
} // namespace dsp
