/**
 * @file
 * Unit tests for the per-node two-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/node_caches.hh"

namespace dsp {
namespace {

CacheParams
tinyCaches()
{
    // 4 kB L1, 16 kB L2 keeps eviction tests small.
    CacheParams params;
    params.l1 = CacheGeometry{4 * 1024, 2};
    params.l2 = CacheGeometry{16 * 1024, 4};
    return params;
}

TEST(CacheGeometry, SetsComputation)
{
    CacheGeometry g{128 * 1024, 4};
    EXPECT_EQ(g.sets(), 512u);
    CacheGeometry l2{4 * 1024 * 1024, 4};
    EXPECT_EQ(l2.sets(), 16384u);
}

TEST(NodeCaches, ColdReadNeedsGetShared)
{
    NodeCaches caches(tinyCaches());
    auto result = caches.access(0x1000, false);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_FALSE(result.l2Hit);
}

TEST(NodeCaches, ColdWriteNeedsGetExclusive)
{
    NodeCaches caches(tinyCaches());
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, FillThenReadHitsL1)
{
    NodeCaches caches(tinyCaches());
    caches.access(0x1000, false);
    caches.fill(0x1000, MosiState::Shared);
    auto result = caches.access(0x1008, false);  // same block
    EXPECT_EQ(result.need, CoherenceNeed::None);
    EXPECT_TRUE(result.l1Hit);
}

TEST(NodeCaches, SharedWriteNeedsUpgrade)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.l2State, MosiState::Shared);
    EXPECT_EQ(caches.upgrades(), 1u);
}

TEST(NodeCaches, OwnedWriteNeedsUpgrade)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Owned);
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, ModifiedAllowsReadAndWrite)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    EXPECT_EQ(caches.access(0x1000, true).need, CoherenceNeed::None);
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
}

TEST(NodeCaches, UpgradeFillPromotesInPlace)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    caches.access(0x1000, true);  // upgrade miss
    auto fill = caches.fill(0x1000, MosiState::Modified);
    EXPECT_FALSE(fill.evicted);
    EXPECT_EQ(caches.stateOf(blockOf(0x1000)), MosiState::Modified);
    EXPECT_EQ(caches.access(0x1000, true).need, CoherenceNeed::None);
}

TEST(NodeCaches, InvalidateDropsBothLevels)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    MosiState prior = caches.invalidate(blockOf(0x1000));
    EXPECT_EQ(prior, MosiState::Modified);
    auto result = caches.access(0x1000, false);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(NodeCaches, DowngradeModifiedToOwned)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    EXPECT_EQ(caches.downgrade(blockOf(0x1000)), MosiState::Owned);
    // Readable without coherence, but a write now needs an upgrade.
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
    EXPECT_EQ(caches.access(0x1000, true).need,
              CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, DowngradeAbsentBlockIsInvalid)
{
    NodeCaches caches(tinyCaches());
    EXPECT_EQ(caches.downgrade(123), MosiState::Invalid);
    EXPECT_EQ(caches.invalidate(123), MosiState::Invalid);
}

TEST(NodeCaches, L2EvictionReportsDirtyVictim)
{
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};
    params.l2 = CacheGeometry{4096, 1};  // 64 sets, direct mapped
    NodeCaches caches(params);

    // Two blocks mapping to the same L2 set: 64 sets * 64 B = 4096.
    Addr a = 0x0;
    Addr b = 0x1000;  // same set (4096 apart), different tag
    caches.fill(a, MosiState::Modified);
    auto fill = caches.fill(b, MosiState::Shared);
    ASSERT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victim, blockOf(a));
    EXPECT_EQ(fill.victimState, MosiState::Modified);
    EXPECT_EQ(caches.writebacks(), 1u);
}

TEST(NodeCaches, InclusionL2EvictionPurgesL1)
{
    CacheParams params;
    params.l1 = CacheGeometry{4096, 64};  // fully assoc, 64 lines
    params.l2 = CacheGeometry{4096, 1};
    NodeCaches caches(params);

    Addr a = 0x0, b = 0x1000;  // conflict in L2, not in L1
    caches.fill(a, MosiState::Shared);
    EXPECT_TRUE(caches.access(a, false).l1Hit);
    caches.fill(b, MosiState::Shared);  // evicts `a` from L2
    // Inclusion: `a` must also be gone from the L1.
    auto result = caches.access(a, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(NodeCaches, StatsCount)
{
    NodeCaches caches(tinyCaches());
    caches.access(0x1000, false);  // miss
    caches.fill(0x1000, MosiState::Shared);
    caches.access(0x1000, false);  // L1 hit
    caches.invalidate(blockOf(0x1000));
    caches.access(0x1000, false);  // miss again
    EXPECT_EQ(caches.accesses(), 3u);
    EXPECT_EQ(caches.l1Hits(), 1u);
    EXPECT_EQ(caches.l2Misses(), 2u);
}

TEST(Mosi, StatePredicates)
{
    EXPECT_FALSE(canRead(MosiState::Invalid));
    EXPECT_TRUE(canRead(MosiState::Shared));
    EXPECT_TRUE(canRead(MosiState::Owned));
    EXPECT_TRUE(canRead(MosiState::Modified));
    EXPECT_TRUE(canWrite(MosiState::Modified));
    EXPECT_FALSE(canWrite(MosiState::Owned));
    EXPECT_FALSE(canWrite(MosiState::Shared));
    EXPECT_TRUE(isOwnerState(MosiState::Modified));
    EXPECT_TRUE(isOwnerState(MosiState::Owned));
    EXPECT_FALSE(isOwnerState(MosiState::Shared));
    EXPECT_EQ(toString(MosiState::Owned), "O");
}

TEST(MemTypes, BlockAndMacroblockMath)
{
    EXPECT_EQ(blockOf(0), 0u);
    EXPECT_EQ(blockOf(63), 0u);
    EXPECT_EQ(blockOf(64), 1u);
    EXPECT_EQ(blockBase(2), 128u);
    EXPECT_EQ(macroblockOf(1023), 0u);
    EXPECT_EQ(macroblockOf(1024), 1u);
    EXPECT_EQ(macroblockOf(512, 8), 2u);  // 256 B macroblocks
}

TEST(MemTypes, HomeInterleaving)
{
    EXPECT_EQ(homeOf(0, 16), 0u);
    EXPECT_EQ(homeOf(17, 16), 1u);
    EXPECT_EQ(homeOf(31, 16), 15u);
    // Consecutive blocks round-robin across nodes.
    for (BlockId b = 0; b < 64; ++b)
        EXPECT_EQ(homeOf(b, 16), b % 16);
}

} // namespace
} // namespace dsp
