/**
 * @file
 * Unit tests for the per-node two-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/node_caches.hh"

namespace dsp {
namespace {

CacheParams
tinyCaches()
{
    // 4 kB L1, 16 kB L2 keeps eviction tests small.
    CacheParams params;
    params.l1 = CacheGeometry{4 * 1024, 2};
    params.l2 = CacheGeometry{16 * 1024, 4};
    return params;
}

TEST(CacheGeometry, SetsComputation)
{
    CacheGeometry g{128 * 1024, 4};
    EXPECT_EQ(g.sets(), 512u);
    CacheGeometry l2{4 * 1024 * 1024, 4};
    EXPECT_EQ(l2.sets(), 16384u);
}

TEST(NodeCaches, ColdReadNeedsGetShared)
{
    NodeCaches caches(tinyCaches());
    auto result = caches.access(0x1000, false);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_FALSE(result.l2Hit);
}

TEST(NodeCaches, ColdWriteNeedsGetExclusive)
{
    NodeCaches caches(tinyCaches());
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, FillThenReadHitsL1)
{
    NodeCaches caches(tinyCaches());
    caches.access(0x1000, false);
    caches.fill(0x1000, MosiState::Shared);
    auto result = caches.access(0x1008, false);  // same block
    EXPECT_EQ(result.need, CoherenceNeed::None);
    EXPECT_TRUE(result.l1Hit);
}

TEST(NodeCaches, SharedWriteNeedsUpgrade)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.l2State, MosiState::Shared);
    EXPECT_EQ(caches.upgrades(), 1u);
}

TEST(NodeCaches, OwnedWriteNeedsUpgrade)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Owned);
    auto result = caches.access(0x1000, true);
    EXPECT_EQ(result.need, CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, ModifiedAllowsReadAndWrite)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    EXPECT_EQ(caches.access(0x1000, true).need, CoherenceNeed::None);
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
}

TEST(NodeCaches, UpgradeFillPromotesInPlace)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    caches.access(0x1000, true);  // upgrade miss
    auto fill = caches.fill(0x1000, MosiState::Modified);
    EXPECT_FALSE(fill.evicted);
    EXPECT_EQ(caches.stateOf(blockOf(0x1000)), MosiState::Modified);
    EXPECT_EQ(caches.access(0x1000, true).need, CoherenceNeed::None);
}

TEST(NodeCaches, InvalidateDropsBothLevels)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    // Contract: callers of invalidate()/downgrade() pair them with
    // the l0Invalidate() hook (the system layer's coherence fan-in).
    caches.l0Invalidate(blockOf(0x1000));
    MosiState prior = caches.invalidate(blockOf(0x1000));
    EXPECT_EQ(prior, MosiState::Modified);
    auto result = caches.access(0x1000, false);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(NodeCaches, DowngradeModifiedToOwned)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    caches.l0Invalidate(blockOf(0x1000));
    EXPECT_EQ(caches.downgrade(blockOf(0x1000)), MosiState::Owned);
    // Readable without coherence, but a write now needs an upgrade.
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
    EXPECT_EQ(caches.access(0x1000, true).need,
              CoherenceNeed::GetExclusive);
}

TEST(NodeCaches, DowngradeAbsentBlockIsInvalid)
{
    NodeCaches caches(tinyCaches());
    EXPECT_EQ(caches.downgrade(123), MosiState::Invalid);
    EXPECT_EQ(caches.invalidate(123), MosiState::Invalid);
}

TEST(NodeCaches, L2EvictionReportsDirtyVictim)
{
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};
    params.l2 = CacheGeometry{4096, 1};  // 64 sets, direct mapped
    NodeCaches caches(params);

    // Two blocks mapping to the same L2 set: 64 sets * 64 B = 4096.
    Addr a = 0x0;
    Addr b = 0x1000;  // same set (4096 apart), different tag
    caches.fill(a, MosiState::Modified);
    auto fill = caches.fill(b, MosiState::Shared);
    ASSERT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victim, blockOf(a));
    EXPECT_EQ(fill.victimState, MosiState::Modified);
    EXPECT_EQ(caches.writebacks(), 1u);
}

TEST(NodeCaches, InclusionL2EvictionPurgesL1)
{
    CacheParams params;
    params.l1 = CacheGeometry{4096, 64};  // fully assoc, 64 lines
    params.l2 = CacheGeometry{4096, 1};
    NodeCaches caches(params);

    Addr a = 0x0, b = 0x1000;  // conflict in L2, not in L1
    caches.fill(a, MosiState::Shared);
    EXPECT_TRUE(caches.access(a, false).l1Hit);
    caches.fill(b, MosiState::Shared);  // evicts `a` from L2
    // Inclusion: `a` must also be gone from the L1.
    auto result = caches.access(a, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(NodeCaches, StatsCount)
{
    NodeCaches caches(tinyCaches());
    caches.access(0x1000, false);  // miss
    caches.fill(0x1000, MosiState::Shared);
    caches.access(0x1000, false);  // L1 hit
    caches.l0Invalidate(blockOf(0x1000));
    caches.invalidate(blockOf(0x1000));
    caches.access(0x1000, false);  // miss again
    EXPECT_EQ(caches.accesses(), 3u);
    EXPECT_EQ(caches.l1Hits(), 1u);
    EXPECT_EQ(caches.l2Misses(), 2u);
}

// ---------------------------------------------------- fill handles

TEST(NodeCachesHandle, FillViaMshrHandleDoesZeroExtraWalks)
{
    // The headline invariant of the probe/fill rework: after the
    // access walked the sets once, the fill() that completes the miss
    // must not walk any tag plane again. Pinned via the debug-build
    // walk counters (release builds count nothing and skip the exact
    // assertions; semantics are still exercised).
    NodeCaches caches(tinyCaches());
    auto result = caches.access(0x1000, false);
    ASSERT_EQ(result.need, CoherenceNeed::GetShared);
    NodeCaches::FillHandle handle = caches.lastMissHandle();

    std::uint64_t l1_before = caches.l1TagWalks();
    std::uint64_t l2_before = caches.l2TagWalks();
    auto fill = caches.fill(0x1000, MosiState::Shared, &handle);
    EXPECT_FALSE(fill.evicted);
    if (NodeCaches::walkCounting) {
        EXPECT_EQ(caches.l2TagWalks(), l2_before);
        EXPECT_EQ(caches.l1TagWalks(), l1_before);
    }
    EXPECT_EQ(caches.handleRewalks(), 0u);
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
}

TEST(NodeCachesHandle, UpgradeFillViaHandleIsWalkFree)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    auto result = caches.access(0x1000, true);  // upgrade miss
    ASSERT_EQ(result.need, CoherenceNeed::GetExclusive);
    NodeCaches::FillHandle handle = caches.lastMissHandle();

    std::uint64_t l2_before = caches.l2TagWalks();
    auto fill = caches.fill(0x1000, MosiState::Modified, &handle);
    EXPECT_FALSE(fill.evicted);
    if (NodeCaches::walkCounting)
        EXPECT_EQ(caches.l2TagWalks(), l2_before);
    EXPECT_EQ(caches.stateOf(blockOf(0x1000)), MosiState::Modified);
    EXPECT_EQ(caches.access(0x1000, true).need, CoherenceNeed::None);
}

TEST(NodeCachesHandle, FillAfterInvalidateOfSameSetRewalks)
{
    // A racing GETX invalidates a block in the *same L2 set* between
    // the access and its fill; the stale handle must re-walk and the
    // fill must prefer the way the invalidation just freed.
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};
    params.l2 = CacheGeometry{16 * 1024, 4};  // 64 sets, 4-way
    NodeCaches caches(params);

    // Three same-set residents (blocks 0, 64, 128 -> set 0).
    caches.fill(blockBase(0), MosiState::Shared);
    caches.fill(blockBase(64), MosiState::Shared);
    caches.fill(blockBase(128), MosiState::Shared);

    auto result = caches.access(blockBase(192), false);  // set 0 miss
    ASSERT_EQ(result.need, CoherenceNeed::GetShared);
    NodeCaches::FillHandle handle = caches.lastMissHandle();

    caches.l0Invalidate(64);
    caches.invalidate(64);  // frees a way in set 0 mid-flight

    auto fill = caches.fill(blockBase(192), MosiState::Shared, &handle);
    EXPECT_FALSE(fill.evicted);  // took the freed way, evicted no one
    EXPECT_GE(caches.handleRewalks(), 1u);
    EXPECT_EQ(caches.stateOf(0), MosiState::Shared);
    EXPECT_EQ(caches.stateOf(128), MosiState::Shared);
    EXPECT_EQ(caches.stateOf(192), MosiState::Shared);
}

TEST(NodeCachesHandle, FillAfterEvictionPressureOnSameSet)
{
    // Another miss's fill lands in the same L2 set between this
    // miss's access and fill (consuming the precomputed victim); the
    // handle re-walks and evicts exactly what a fresh install would.
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};
    params.l2 = CacheGeometry{16 * 1024, 4};  // 64 sets, 4-way
    NodeCaches caches(params);

    for (BlockId b : {0u, 64u, 128u, 192u})
        caches.fill(blockBase(b), MosiState::Shared);  // set 0 full

    auto result = caches.access(blockBase(256), false);  // set 0
    ASSERT_EQ(result.need, CoherenceNeed::GetShared);
    NodeCaches::FillHandle handle = caches.lastMissHandle();

    // A different miss fills the same set first, taking the LRU way
    // (block 0).
    auto other = caches.fill(blockBase(320), MosiState::Shared);
    ASSERT_TRUE(other.evicted);
    EXPECT_EQ(other.victim, 0u);

    auto fill = caches.fill(blockBase(256), MosiState::Shared, &handle);
    ASSERT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victim, 64u);  // the fresh LRU, not the stale one
    EXPECT_EQ(caches.stateOf(256), MosiState::Shared);
    EXPECT_EQ(caches.stateOf(320), MosiState::Shared);
}

TEST(NodeCachesHandle, FillAfterDowngradeKeepsInPlacePromotion)
{
    // A downgrade (external GETS) touches the L2 line between an
    // upgrade access and its fill; the fill still promotes in place.
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    caches.l0Invalidate(blockOf(0x1000));
    caches.downgrade(blockOf(0x1000));  // M -> O
    auto result = caches.access(0x1000, true);
    ASSERT_EQ(result.need, CoherenceNeed::GetExclusive);
    NodeCaches::FillHandle handle = caches.lastMissHandle();

    caches.l0Invalidate(blockOf(0x1000));
    caches.downgrade(blockOf(0x1000));  // no-op on O, but touches

    auto fill = caches.fill(0x1000, MosiState::Modified, &handle);
    EXPECT_FALSE(fill.evicted);
    EXPECT_EQ(caches.stateOf(blockOf(0x1000)), MosiState::Modified);
}

TEST(Mosi, StatePredicates)
{
    EXPECT_FALSE(canRead(MosiState::Invalid));
    EXPECT_TRUE(canRead(MosiState::Shared));
    EXPECT_TRUE(canRead(MosiState::Owned));
    EXPECT_TRUE(canRead(MosiState::Modified));
    EXPECT_TRUE(canWrite(MosiState::Modified));
    EXPECT_FALSE(canWrite(MosiState::Owned));
    EXPECT_FALSE(canWrite(MosiState::Shared));
    EXPECT_TRUE(isOwnerState(MosiState::Modified));
    EXPECT_TRUE(isOwnerState(MosiState::Owned));
    EXPECT_FALSE(isOwnerState(MosiState::Shared));
    EXPECT_EQ(toString(MosiState::Owned), "O");
}

TEST(MemTypes, BlockAndMacroblockMath)
{
    EXPECT_EQ(blockOf(0), 0u);
    EXPECT_EQ(blockOf(63), 0u);
    EXPECT_EQ(blockOf(64), 1u);
    EXPECT_EQ(blockBase(2), 128u);
    EXPECT_EQ(macroblockOf(1023), 0u);
    EXPECT_EQ(macroblockOf(1024), 1u);
    EXPECT_EQ(macroblockOf(512, 8), 2u);  // 256 B macroblocks
}

TEST(MemTypes, HomeInterleaving)
{
    EXPECT_EQ(homeOf(0, 16), 0u);
    EXPECT_EQ(homeOf(17, 16), 1u);
    EXPECT_EQ(homeOf(31, 16), 15u);
    // Consecutive blocks round-robin across nodes.
    for (BlockId b = 0; b < 64; ++b)
        EXPECT_EQ(homeOf(b, 16), b % 16);
}

} // namespace
} // namespace dsp
