/**
 * @file
 * Tests for fused hop-chain events (docs/parallel_kernel.md):
 *
 *  - fused and unfused runs produce bit-identical figure statistics
 *    at one and at four shards (the fusion-transparency contract);
 *  - EventQueue::chainAdvance refuses hops beyond the current run()
 *    limit (a fused hop must never leak past a planned window
 *    boundary) and hops that would jump pending earlier work;
 *  - a self-rescheduling pooled event (the shape ChainEvent and the
 *    contended order/delivery retries use) survives the execute()
 *    release-skip and is recycled exactly once on deschedule();
 *  - a checkpoint taken while fused chains are in flight restores to
 *    bit-identical figures at the same and a different shard count.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "system/system.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

// ---- standalone-queue chainAdvance contract -------------------------------

/** Member event that attempts one chain advance from inside its own
 *  process(), recording the verdict. */
struct AdvanceProbe final : Event {
    EventQueue *q = nullptr;
    Tick hop = 0;
    bool advanced = false;
    bool ran = false;

    void
    process() override
    {
        ran = true;
        advanced = q->chainAdvance(
            hop, q->allocKey(EventPriority::Delivery), 7);
    }
};

TEST(ChainAdvance, RefusesHopsBeyondTheRunLimit)
{
    EventQueue q;
    AdvanceProbe probe;
    probe.q = &q;
    probe.hop = 200;  // beyond the window the scheduler planned
    q.schedule(probe, 100, EventPriority::Delivery);

    q.run(150);
    ASSERT_TRUE(probe.ran);
    EXPECT_FALSE(probe.advanced)
        << "a fused hop crossed the run() window boundary";
    EXPECT_EQ(q.now(), 150u);  // run()'s own trailing advance
}

TEST(ChainAdvance, InlinesHopsInsideTheWindow)
{
    EventQueue q;
    AdvanceProbe probe;
    probe.q = &q;
    probe.hop = 140;
    std::uint64_t ops_before = q.calendarOps();
    std::uint64_t executed_before = q.executed();
    q.schedule(probe, 100, EventPriority::Delivery);

    q.run(150);
    ASSERT_TRUE(probe.ran);
    EXPECT_TRUE(probe.advanced);
    // The advance moved the clock and counted as an executed event,
    // but touched neither calendar plane: one insert + one pop for
    // the probe itself is the whole calendar bill.
    EXPECT_EQ(q.executed() - executed_before, 2u);
    EXPECT_EQ(q.calendarOps() - ops_before, 2u);
}

TEST(ChainAdvance, RefusesToJumpPendingEarlierWork)
{
    EventQueue q;
    AdvanceProbe probe;
    probe.q = &q;
    probe.hop = 140;
    q.schedule(probe, 100, EventPriority::Delivery);

    // A pending event at tick 120 orders before the hop at 140; the
    // advance must refuse so the calendar serves both in order.
    AdvanceProbe bystander;
    bystander.q = &q;
    bystander.hop = 121;
    q.schedule(bystander, 120, EventPriority::Delivery);

    q.run(150);
    ASSERT_TRUE(probe.ran);
    EXPECT_FALSE(probe.advanced)
        << "chain advance jumped over a pending earlier event";
    EXPECT_TRUE(bystander.ran);
}

// ---- pooled self-rescheduling events --------------------------------------

/** Pooled event that re-inserts *itself* (same-queue, future tick)
 *  until its hop budget runs out -- the ChainEvent / contended-retry
 *  shape. The queue's execute() must skip release() while the event
 *  is scheduled, and deschedule() must recycle it exactly once. */
struct SelfChain final : Event {
    EventQueue *q = nullptr;
    int hopsLeft = 0;
    int executed = 0;

    SelfChain(EventQueue &queue, int hops) : q(&queue), hopsLeft(hops)
    {
    }

    void
    process() override
    {
        ++executed;
        if (--hopsLeft > 0) {
            q->scheduleWithKey(*this, q->now() + 10,
                               q->allocKey(EventPriority::Delivery));
        }
    }

    void
    release() override
    {
        EventPool<SelfChain>::instance().release(this);
    }
};

TEST(ChainFusionEvents, DescheduleMidChainRecyclesThePooledEvent)
{
    EventPoolStats before = eventPoolStats();
    EventQueue q;
    SelfChain &chain =
        *EventPool<SelfChain>::instance().acquire(q, 4);
    q.scheduleWithKey(chain, 10,
                      q.allocKey(EventPriority::Delivery));

    // Two hops execute (10, 20); the third insertion at 30 sits
    // beyond the window and stays pending.
    q.run(25);
    EXPECT_EQ(chain.executed, 2);
    EXPECT_EQ(q.pending(), 1u);

    // Cancel mid-chain: the event leaves the calendar and goes back
    // to its pool exactly once (live count returns to the baseline).
    q.deschedule(chain);
    EXPECT_TRUE(q.empty());
    EventPoolStats after = eventPoolStats();
    EXPECT_EQ(after.live(), before.live());
    EXPECT_EQ(after.acquires - before.acquires, 1u);
    EXPECT_EQ(after.releases - before.releases, 1u);
}

TEST(ChainFusionEvents, SelfRescheduleSurvivesTheReleaseSkipAndDrains)
{
    EventPoolStats before = eventPoolStats();
    EventQueue q;
    SelfChain &chain =
        *EventPool<SelfChain>::instance().acquire(q, 3);
    q.scheduleWithKey(chain, 10,
                      q.allocKey(EventPriority::Delivery));

    // Run to completion: the final hop does not re-insert, so the
    // queue's execute() releases the event normally.
    q.run();
    EXPECT_TRUE(q.empty());
    EventPoolStats after = eventPoolStats();
    EXPECT_EQ(after.live(), before.live());
    EXPECT_EQ(after.releases - before.releases, 1u);
}

// ---- system-level fusion transparency -------------------------------------

/** Self-cleaning scratch directory for snapshot files. */
struct TempDir {
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/dsp_fusion_test_XXXXXX";
        const char *made = ::mkdtemp(buf);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
    }

    ~TempDir()
    {
        if (path.empty())
            return;
        if (DIR *dir = ::opendir(path.c_str())) {
            while (const dirent *entry = ::readdir(dir)) {
                std::string name = entry->d_name;
                if (name == "." || name == "..")
                    continue;
                std::remove((path + "/" + name).c_str());
            }
            ::closedir(dir);
        }
        ::rmdir(path.c_str());
    }
};

/** Snapshot files under `dir`, sorted oldest-first by tick. */
std::vector<std::pair<std::uint64_t, std::string>>
listCheckpoints(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return found;
    while (const dirent *entry = ::readdir(d)) {
        std::string name = entry->d_name;
        if (name.size() <= 9 || name.compare(0, 5, "ckpt_") != 0 ||
            name.compare(name.size() - 4, 4, ".dsp") != 0) {
            continue;
        }
        std::uint64_t tick =
            std::strtoull(name.c_str() + 5, nullptr, 10);
        found.emplace_back(tick, dir + "/" + name);
    }
    ::closedir(d);
    std::sort(found.begin(), found.end());
    return found;
}

SystemParams
fusionParams(ProtocolKind protocol, unsigned shards, bool fuse)
{
    SystemParams params;
    params.nodes = 16;
    params.protocol = protocol;
    params.policy = PredictorPolicy::OwnerGroup;
    params.shards = shards;
    params.functionalWarmupMisses = 2000;
    params.warmupInstrPerCpu = 2000;
    params.measureInstrPerCpu = 20000;
    params.crossbar.fuse_chains = fuse;
    return params;
}

SystemStats
runOnce(const SystemParams &params)
{
    auto workload = makeWorkload("barnes", params.nodes, 1, 0.25);
    System system(*workload, params);
    return system.run();
}

/** Every figure-feeding statistic, exactly equal. Fusion must be
 *  invisible here: it may only move calendarOps (a host counter) and
 *  the wall clock. eventsExecuted is included deliberately -- an
 *  inlined hop counts as an executed event exactly like the calendar
 *  pop it replaces. */
void
expectFigureEqual(const SystemStats &a, const SystemStats &b)
{
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.indirections, b.indirections);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.doubleRetries, b.doubleRetries);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.cacheToCache, b.cacheToCache);
    EXPECT_EQ(a.requestMessages, b.requestMessages);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.avgMissLatencyNs, b.avgMissLatencyNs);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_EQ(a.l0Hits, b.l0Hits);
    EXPECT_EQ(a.l0Absorbed, b.l0Absorbed);
    EXPECT_EQ(a.wordTouches, b.wordTouches);
    EXPECT_EQ(a.stoppedEarly, b.stoppedEarly);
}

TEST(ChainFusion, FusedMatchesUnfusedBitExactlyMulticast)
{
    SystemStats unfused =
        runOnce(fusionParams(ProtocolKind::Multicast, 1, false));
    SystemStats fused =
        runOnce(fusionParams(ProtocolKind::Multicast, 1, true));
    expectFigureEqual(fused, unfused);
    EXPECT_EQ(fused.windowsRun, unfused.windowsRun);
    EXPECT_EQ(fused.barrierCrossings, unfused.barrierCrossings);
    // The point of the exercise: fan-out chains replace per-dest
    // calendar round-trips, so the fused run does measurably less
    // calendar work while matching every figure above.
    EXPECT_LT(fused.calendarOps, unfused.calendarOps);
}

TEST(ChainFusion, FusedMatchesUnfusedBitExactlySnooping)
{
    SystemStats unfused =
        runOnce(fusionParams(ProtocolKind::Snooping, 1, false));
    SystemStats fused =
        runOnce(fusionParams(ProtocolKind::Snooping, 1, true));
    expectFigureEqual(fused, unfused);
    EXPECT_LT(fused.calendarOps, unfused.calendarOps);
}

TEST(ChainFusion, FusedShardedMatchesFusedSingleThread)
{
    SystemStats k1 =
        runOnce(fusionParams(ProtocolKind::Multicast, 1, true));
    SystemStats k4 =
        runOnce(fusionParams(ProtocolKind::Multicast, 4, true));
    // Figure statistics are shard-count independent with fusion on,
    // exactly as without it (the carried-key determinism contract;
    // chain-advance refusals may differ per partition, but a refusal
    // re-inserts at unchanged coordinates).
    expectFigureEqual(k4, k1);
    EXPECT_EQ(k4.windowsRun, k1.windowsRun);
    EXPECT_EQ(k4.barrierCrossings, k1.barrierCrossings);

    // And the whole fused K=4 run matches the unfused K=4 run.
    SystemStats k4_unfused =
        runOnce(fusionParams(ProtocolKind::Multicast, 4, false));
    expectFigureEqual(k4, k4_unfused);
}

TEST(ChainFusion, CheckpointWithChainsInFlightRestoresIdentically)
{
    TempDir dir;
    SystemParams params =
        fusionParams(ProtocolKind::Multicast, 1, true);
    params.checkpoint.every = 20000000;  // 20 ms simulated
    params.checkpoint.dir = dir.path;

    SystemStats full = runOnce(params);
    auto ckpts = listCheckpoints(dir.path);
    ASSERT_GE(ckpts.size(), 1u)
        << "cadence too coarse: no snapshot was written";

    // Resume from the earliest snapshot (longest replayed suffix,
    // maximising the chance it caught pending chains/fused retries)
    // at the same shard count...
    SystemParams resume = params;
    resume.checkpoint.restore = true;
    resume.checkpoint.restorePath = ckpts.front().second;
    {
        auto workload = makeWorkload("barnes", params.nodes, 1, 0.25);
        System system(*workload, resume);
        SystemStats resumed = system.run();
        ASSERT_TRUE(system.restoredFromCheckpoint());
        expectFigureEqual(resumed, full);
    }

    // ...and across shard counts: a saved mid-chain event is re-split
    // into plain keyed deliveries, so a K=1 snapshot restores under
    // K=4 with identical figures.
    SystemParams cross =
        fusionParams(ProtocolKind::Multicast, 4, true);
    cross.checkpoint.every = params.checkpoint.every;
    cross.checkpoint.dir = dir.path;
    cross.checkpoint.restore = true;
    cross.checkpoint.restorePath = ckpts.front().second;
    {
        auto workload = makeWorkload("barnes", params.nodes, 1, 0.25);
        System system(*workload, cross);
        SystemStats crossed = system.run();
        ASSERT_TRUE(system.restoredFromCheckpoint());
        expectFigureEqual(crossed, full);
    }
}

} // namespace
} // namespace dsp
