/**
 * @file
 * Table 3 compliance tests for every destination-set predictor policy,
 * plus indexing, allocation-filter, capacity, and factory tests.
 */

#include <gtest/gtest.h>

#include "core/baseline_predictors.hh"
#include "core/broadcast_if_shared.hh"
#include "core/factory.hh"
#include "core/group_predictor.hh"
#include "core/owner_group_predictor.hh"
#include "core/owner_predictor.hh"
#include "core/sticky_spatial.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;
constexpr Addr kAddr = 0x10000;
constexpr Addr kPc = 0x400;
constexpr NodeId kReq = 3;
constexpr NodeId kHome = 0;

PredictorConfig
config(std::size_t entries = 0,
       IndexingMode mode = IndexingMode::Macroblock1024)
{
    PredictorConfig c;
    c.numNodes = kNodes;
    c.entries = entries;
    c.indexing = mode;
    return c;
}

DestinationSet
minimal()
{
    DestinationSet s;
    s.add(kReq);
    s.add(kHome);
    return s;
}

// ------------------------------------------------------------------ Owner

TEST(Owner, ColdPredictsMinimalSet)
{
    OwnerPredictor pred(config());
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
}

TEST(Owner, LearnsResponderFromDataResponse)
{
    OwnerPredictor pred(config());
    pred.trainResponse(kAddr, kPc, 7, true);
    DestinationSet expected = minimal();
    expected.add(7);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              expected);
}

TEST(Owner, MemoryResponseClearsValid)
{
    OwnerPredictor pred(config());
    pred.trainResponse(kAddr, kPc, 7, true);
    pred.trainResponse(kAddr, kPc, invalidNode, false);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
    // The entry still exists -- only Valid was cleared (Table 3).
    EXPECT_EQ(pred.entryCount(), 1u);
}

TEST(Owner, ExternalGetxSetsOwnerToRequester)
{
    OwnerPredictor pred(config());
    pred.trainExternalRequest(kAddr, kPc, RequestType::GetExclusive,
                              11);
    DestinationSet expected = minimal();
    expected.add(11);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetExclusive, kReq,
                           kHome),
              expected);
}

TEST(Owner, ExternalGetsIsIgnored)
{
    OwnerPredictor pred(config());
    pred.trainExternalRequest(kAddr, kPc, RequestType::GetShared, 11);
    EXPECT_EQ(pred.entryCount(), 0u);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
}

TEST(Owner, PredictsAtMostOneExtraNode)
{
    OwnerPredictor pred(config());
    for (NodeId n = 0; n < kNodes; ++n)
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, n);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_LE(set.count(), 3u);  // requester + home + one owner
    // Last trainer wins.
    EXPECT_TRUE(set.contains(kNodes - 1));
}

TEST(Owner, AllocationFilterSkipsSufficientMisses)
{
    OwnerPredictor pred(config());
    // Memory response with a sufficient minimal set: no allocation.
    pred.trainResponse(kAddr, kPc, invalidNode, false);
    EXPECT_EQ(pred.entryCount(), 0u);
}

TEST(Owner, NoFilterAllocatesOnMemoryResponses)
{
    PredictorConfig cfg = config(64);
    cfg.allocationFilter = false;
    OwnerPredictor pred(cfg);
    pred.trainResponse(kAddr, kPc, invalidNode, false);
    // Without the Section 3.1 filter, even an unshared miss costs an
    // entry (the pollution the filter exists to avoid).
    EXPECT_EQ(pred.entryCount(), 1u);

    PredictorConfig strict = config(64);
    OwnerPredictor filtered(strict);
    filtered.trainResponse(kAddr, kPc, invalidNode, false);
    EXPECT_EQ(filtered.entryCount(), 0u);
}

TEST(Owner, EntryBitsMatchTable3)
{
    OwnerPredictor pred(config());
    // log2(16) + valid = 5 bits.
    EXPECT_EQ(pred.entryBits(), 5u);
}

// ----------------------------------------------------- Broadcast-If-Shared

TEST(BroadcastIfShared, ColdPredictsMinimal)
{
    BroadcastIfSharedPredictor pred(config());
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
}

TEST(BroadcastIfShared, CounterAboveOneBroadcasts)
{
    BroadcastIfSharedPredictor pred(config());
    pred.trainResponse(kAddr, kPc, 7, true);  // counter 1 -> minimal
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
    pred.trainResponse(kAddr, kPc, 7, true);  // counter 2 -> broadcast
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              DestinationSet::all(kNodes));
}

TEST(BroadcastIfShared, MemoryResponsesTrainDown)
{
    BroadcastIfSharedPredictor pred(config());
    for (int i = 0; i < 3; ++i)
        pred.trainResponse(kAddr, kPc, 7, true);  // saturate at 3
    pred.trainResponse(kAddr, kPc, invalidNode, false);  // 2
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              DestinationSet::all(kNodes));
    pred.trainResponse(kAddr, kPc, invalidNode, false);  // 1
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
}

TEST(BroadcastIfShared, CounterSaturatesAtThree)
{
    BroadcastIfSharedPredictor pred(config());
    for (int i = 0; i < 10; ++i)
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, 5);
    // Three train-downs must be enough to fall below the threshold.
    for (int i = 0; i < 2; ++i)
        pred.trainResponse(kAddr, kPc, invalidNode, false);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                           kHome),
              minimal());
}

TEST(BroadcastIfShared, EntryBitsMatchTable3)
{
    BroadcastIfSharedPredictor pred(config());
    EXPECT_EQ(pred.entryBits(), 2u);
}

// ------------------------------------------------------------------ Group

TEST(Group, AddsNodesWithCountersAboveOne)
{
    GroupPredictor pred(config());
    // Nodes 5 and 6 train twice; node 7 only once.
    for (NodeId n : {5, 6, 5, 6, 7}) {
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, n);
    }
    DestinationSet expected = minimal();
    expected.add(5);
    expected.add(6);
    EXPECT_EQ(pred.predict(kAddr, kPc, RequestType::GetExclusive, kReq,
                           kHome),
              expected);
}

TEST(Group, ResponsesTrainResponder)
{
    GroupPredictor pred(config());
    pred.trainResponse(kAddr, kPc, 9, true);
    pred.trainResponse(kAddr, kPc, 9, true);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_TRUE(set.contains(9));
}

TEST(Group, RolloverDecaysInactiveNodes)
{
    GroupPredictor pred(config());
    // Train node 5 up to saturation (counter 3).
    for (int i = 0; i < 3; ++i)
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, 5);
    // 3 events so far. Drive the 5-bit rollover over its edge twice
    // (64 more events from node 2): each wrap decays all counters.
    for (int i = 0; i < 64; ++i)
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, 2);
    auto set = pred.predict(kAddr, kPc, RequestType::GetExclusive,
                            kReq, kHome);
    // Node 2 trained continuously, so it stays; node 5 decayed from
    // 3 to 1 and left the predicted set.
    EXPECT_TRUE(set.contains(2));
    EXPECT_FALSE(set.contains(5));
}

TEST(Group, MemoryResponseOnlyTicksRollover)
{
    GroupPredictor pred(config());
    pred.trainExternalRequest(kAddr, kPc, RequestType::GetExclusive,
                              5);
    std::size_t entries = pred.entryCount();
    pred.trainResponse(kAddr, kPc, invalidNode, false);
    EXPECT_EQ(pred.entryCount(), entries);  // no allocation
}

TEST(Group, EntryBitsMatchTable3)
{
    GroupPredictor pred(config());
    // 2 bits x 16 nodes + 5-bit rollover = 37 bits.
    EXPECT_EQ(pred.entryBits(), 37u);
}

// ------------------------------------------------------------ Owner/Group

TEST(OwnerGroup, ReadsUseOwnerWritesUseGroup)
{
    OwnerGroupPredictor pred(config());
    // Build a sharing group {5, 6}; most recent exclusive from 6.
    for (NodeId n : {5, 6, 5, 6}) {
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, n);
    }

    auto read = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                             kHome);
    DestinationSet read_expected = minimal();
    read_expected.add(6);  // owner only
    EXPECT_EQ(read, read_expected);

    auto write = pred.predict(kAddr, kPc, RequestType::GetExclusive,
                              kReq, kHome);
    EXPECT_TRUE(write.contains(5));
    EXPECT_TRUE(write.contains(6));
}

TEST(OwnerGroup, ReadPredictionIsNarrowerThanWrite)
{
    OwnerGroupPredictor pred(config());
    for (NodeId n : {5, 6, 7, 5, 6, 7}) {
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, n);
    }
    auto read = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                             kHome);
    auto write = pred.predict(kAddr, kPc, RequestType::GetExclusive,
                              kReq, kHome);
    EXPECT_LE(read.count(), write.count());
    EXPECT_TRUE(write.containsAll(read));
}

TEST(OwnerGroup, MemoryResponseClearsOwnerOnly)
{
    OwnerGroupPredictor pred(config());
    for (NodeId n : {5, 5}) {
        pred.trainExternalRequest(kAddr, kPc,
                                  RequestType::GetExclusive, n);
    }
    pred.trainResponse(kAddr, kPc, invalidNode, false);
    auto read = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                             kHome);
    EXPECT_EQ(read, minimal());  // owner invalidated
    auto write = pred.predict(kAddr, kPc, RequestType::GetExclusive,
                              kReq, kHome);
    EXPECT_TRUE(write.contains(5));  // group survives
}

// ---------------------------------------------------------- StickySpatial

TEST(StickySpatial, TrainsFromResponses)
{
    StickySpatialPredictor pred(config(0, IndexingMode::Block64), 1);
    pred.trainResponse(kAddr, kPc, 9, true);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_TRUE(set.contains(9));
}

TEST(StickySpatial, IgnoresExternalRequests)
{
    StickySpatialPredictor pred(config(0, IndexingMode::Block64), 1);
    pred.trainExternalRequest(kAddr, kPc, RequestType::GetExclusive,
                              9);
    EXPECT_EQ(pred.entryCount(), 0u);
}

TEST(StickySpatial, RetryTrainsTrueSet)
{
    StickySpatialPredictor pred(config(0, IndexingMode::Block64), 1);
    DestinationSet truth;
    truth.add(4);
    truth.add(9);
    pred.trainRetry(kAddr, kPc, truth);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_TRUE(set.containsAll(truth));
}

TEST(StickySpatial, AggregatesNeighbourEntries)
{
    StickySpatialPredictor pred(config(0, IndexingMode::Block64), 1);
    // Train the next block over; spatial degree 1 picks it up.
    pred.trainResponse(kAddr + blockBytes, kPc, 12, true);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_TRUE(set.contains(12));
}

TEST(StickySpatial, OnlyTrainsUpUntilReplacement)
{
    StickySpatialPredictor pred(config(64, IndexingMode::Block64), 1);
    pred.trainResponse(kAddr, kPc, 9, true);
    pred.trainResponse(kAddr, kPc, 10, true);
    auto set = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome);
    // Sticky: both stay.
    EXPECT_TRUE(set.contains(9));
    EXPECT_TRUE(set.contains(10));

    // An aliasing address (same direct-mapped slot, different tag)
    // replaces the entry, which is the only way the set shrinks.
    Addr alias = kAddr + 64 * blockBytes;
    pred.trainResponse(alias, kPc, 2, true);
    auto set2 = pred.predict(kAddr, kPc, RequestType::GetShared, kReq,
                             kHome);
    EXPECT_FALSE(set2.contains(9));
    EXPECT_TRUE(set2.contains(2));  // aliased prediction, tag ignored
}

TEST(StickySpatial, PredictionIgnoresTag)
{
    StickySpatialPredictor pred(config(64, IndexingMode::Block64), 1);
    Addr alias = kAddr + 64 * blockBytes;  // same slot as kAddr
    pred.trainResponse(kAddr, kPc, 9, true);
    auto set = pred.predict(alias, kPc, RequestType::GetShared, kReq,
                            kHome);
    EXPECT_TRUE(set.contains(9));
}

// -------------------------------------------------------------- baselines

TEST(Baselines, AlwaysBroadcastAndAlwaysMinimal)
{
    AlwaysBroadcastPredictor bcast(config());
    AlwaysMinimalPredictor min(config());
    EXPECT_EQ(bcast.predict(kAddr, kPc, RequestType::GetShared, kReq,
                            kHome),
              DestinationSet::all(kNodes));
    EXPECT_EQ(min.predict(kAddr, kPc, RequestType::GetShared, kReq,
                          kHome),
              minimal());
}

// ----------------------------------------------------- indexing & capacity

TEST(Indexing, KeysFollowGranularity)
{
    EXPECT_EQ(indexKey(IndexingMode::Block64, 0x1000, 0), 0x40u);
    EXPECT_EQ(indexKey(IndexingMode::Macroblock256, 0x1000, 0),
              0x10u);
    EXPECT_EQ(indexKey(IndexingMode::Macroblock1024, 0x1000, 0), 4u);
    EXPECT_EQ(indexKey(IndexingMode::ProgramCounter, 0x1000, 0x844),
              0x211u);
}

TEST(Indexing, MacroblockSharesEntryAcrossNeighbours)
{
    OwnerPredictor pred(config(0, IndexingMode::Macroblock1024));
    pred.trainResponse(kAddr, kPc, 7, true);
    // A different block in the same 1 KB macroblock hits the entry.
    auto set = pred.predict(kAddr + 512, kPc, RequestType::GetShared,
                            kReq, kHome);
    EXPECT_TRUE(set.contains(7));
    // A block in the next macroblock does not.
    auto miss = pred.predict(kAddr + 1024, kPc,
                             RequestType::GetShared, kReq, kHome);
    EXPECT_FALSE(miss.contains(7));
}

TEST(Indexing, PcModeIgnoresDataAddress)
{
    OwnerPredictor pred(config(0, IndexingMode::ProgramCounter));
    pred.trainResponse(kAddr, kPc, 7, true);
    auto set = pred.predict(kAddr + 0x100000, kPc,
                            RequestType::GetShared, kReq, kHome);
    EXPECT_TRUE(set.contains(7));
}

TEST(Capacity, FiniteTableEvicts)
{
    OwnerPredictor pred(config(16, IndexingMode::Block64));
    for (Addr a = 0; a < 64 * blockBytes; a += blockBytes)
        pred.trainExternalRequest(a, kPc, RequestType::GetExclusive,
                                  5);
    EXPECT_LE(pred.entryCount(), 16u);
}

TEST(Capacity, UnboundedTableGrows)
{
    OwnerPredictor pred(config(0, IndexingMode::Block64));
    for (Addr a = 0; a < 64 * blockBytes; a += blockBytes)
        pred.trainExternalRequest(a, kPc, RequestType::GetExclusive,
                                  5);
    EXPECT_EQ(pred.entryCount(), 64u);
}

// ---------------------------------------------------------------- factory

TEST(Factory, BuildsEveryPolicyWithMatchingName)
{
    for (PredictorPolicy policy :
         {PredictorPolicy::Owner, PredictorPolicy::BroadcastIfShared,
          PredictorPolicy::Group, PredictorPolicy::OwnerGroup,
          PredictorPolicy::StickySpatial,
          PredictorPolicy::AlwaysBroadcast,
          PredictorPolicy::AlwaysMinimal}) {
        auto pred = makePredictor(policy, config(1024));
        EXPECT_EQ(pred->name(), toString(policy));
        EXPECT_EQ(parsePredictorPolicy(toString(policy)), policy);
    }
}

TEST(Factory, PerNodeBuildsIndependentPredictors)
{
    auto preds =
        makePredictorsPerNode(PredictorPolicy::Owner, config(1024));
    ASSERT_EQ(preds.size(), kNodes);
    preds[0]->trainResponse(kAddr, kPc, 7, true);
    auto set0 = preds[0]->predict(kAddr, kPc, RequestType::GetShared,
                                  kReq, kHome);
    auto set1 = preds[1]->predict(kAddr, kPc, RequestType::GetShared,
                                  kReq, kHome);
    EXPECT_TRUE(set0.contains(7));
    EXPECT_FALSE(set1.contains(7));
}

TEST(Factory, ProposedPoliciesAreTheFourFromThePaper)
{
    EXPECT_EQ(proposedPolicies().size(), 4u);
}

// ------------------------------------------------- universal property sweep

/**
 * Every policy, regardless of training history, must predict a
 * superset of the minimal destination set and never exceed the full
 * broadcast set.
 */
class MinimalSetContract
    : public ::testing::TestWithParam<PredictorPolicy>
{
};

TEST_P(MinimalSetContract, HoldsUnderRandomTraining)
{
    auto pred = makePredictor(GetParam(), config(256));
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.uniformInt(1 << 22);
        Addr pc = 0x1000 + rng.uniformInt(64) * 4;
        NodeId node = static_cast<NodeId>(rng.uniformInt(kNodes));
        switch (rng.uniformInt(4)) {
          case 0:
            pred->trainResponse(addr, pc, node, true);
            break;
          case 1:
            pred->trainResponse(addr, pc, invalidNode, false);
            break;
          case 2:
            pred->trainExternalRequest(
                addr, pc,
                rng.chance(0.5) ? RequestType::GetExclusive
                                : RequestType::GetShared,
                node);
            break;
          case 3:
            pred->trainRetry(addr, pc,
                             DestinationSet::fromMask(rng.next() &
                                                      0xffff));
            break;
        }

        NodeId req = static_cast<NodeId>(rng.uniformInt(kNodes));
        NodeId home = static_cast<NodeId>(rng.uniformInt(kNodes));
        auto set = pred->predict(addr, pc,
                                 rng.chance(0.5)
                                     ? RequestType::GetExclusive
                                     : RequestType::GetShared,
                                 req, home);
        ASSERT_TRUE(set.contains(req));
        ASSERT_TRUE(set.contains(home));
        ASSERT_TRUE(DestinationSet::all(kNodes).containsAll(set));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MinimalSetContract,
    ::testing::Values(PredictorPolicy::Owner,
                      PredictorPolicy::BroadcastIfShared,
                      PredictorPolicy::Group,
                      PredictorPolicy::OwnerGroup,
                      PredictorPolicy::StickySpatial,
                      PredictorPolicy::AlwaysBroadcast,
                      PredictorPolicy::AlwaysMinimal),
    [](const ::testing::TestParamInfo<PredictorPolicy> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dsp
