/**
 * @file
 * Tests for the two processor models against a mock memory port:
 * base-rate timing, blocking behaviour, miss overlap (MLP), ROB and
 * MSHR limits.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/detailed_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "workload/region.hh"
#include "workload/workload.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

/** Memory port with a scripted reply pattern. */
class MockPort : public MemoryPort
{
  public:
    explicit MockPort(EventQueue &queue) : queue_(queue) {}

    /** Every `missEvery`-th access misses with `missLatencyNs`. */
    std::uint64_t missEvery = 0;  ///< 0 = everything hits in L1
    double missLatencyNs = 180.0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    unsigned outstanding = 0;
    unsigned peakOutstanding = 0;

    AccessReply
    access(Addr, Addr, bool, Tick when, const Completion &done,
           Addr /* next_hint */ = 0) override
    {
        ++accesses;
        if (missEvery == 0 || accesses % missEvery != 0)
            return AccessReply::L1Hit;
        ++misses;
        ++outstanding;
        peakOutstanding = std::max(peakOutstanding, outstanding);
        Tick fire = std::max(when, queue_.now()) +
                    nsToTicks(missLatencyNs);
        queue_.schedule(fire, [this, done, fire]() {
            --outstanding;
            done(fire);
        });
        return AccessReply::Miss;
    }

  private:
    EventQueue &queue_;
};

/** A workload whose refs are all reads with zero work. */
std::unique_ptr<Workload>
flatWorkload()
{
    auto w = std::make_unique<Workload>("flat", kNodes, 0.0, 1);
    Region::Params params;
    params.name = "flat";
    params.base = 0x1000000;
    params.bytes = 1 << 20;
    params.pcSites = 16;
    w->addRegion(std::make_unique<ReadMostlyRegion>(
                     params, kNodes,
                     ReadMostlyRegion::Config{1024, 1.0, 0.0}),
                 1.0);
    return w;
}

TEST(SimpleCpu, PerfectL1RunsAtFourBips)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    SimpleCpu cpu(q, *workload, 0, port);

    bool done = false;
    cpu.runFor(1000000, [&]() { done = true; });
    q.run();
    ASSERT_TRUE(done);
    // 4 BIPS = 0.25 ns per instruction -> 1M instrs in 250 us.
    double ns = ticksToNs(cpu.finishTick());
    EXPECT_NEAR(ns, 250000.0, 2500.0);
}

TEST(SimpleCpu, MissesStallTheFullLatency)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    port.missEvery = 100;
    port.missLatencyNs = 180.0;
    SimpleCpu cpu(q, *workload, 0, port);

    cpu.runFor(100000, []() {});
    q.run();
    // Expected: 100k instrs * 0.25 ns + ~1000 misses * 180 ns.
    double ns = ticksToNs(cpu.finishTick());
    double expected = 100000 * 0.25 + 1000 * 180.0;
    EXPECT_NEAR(ns, expected, expected * 0.05);
    EXPECT_EQ(port.misses, 1000u);
    // Blocking model: never more than one outstanding.
    EXPECT_EQ(port.peakOutstanding, 1u);
}

TEST(SimpleCpu, RetiredCountsAreExact)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    SimpleCpu cpu(q, *workload, 0, port);
    cpu.runFor(5000, []() {});
    q.run();
    EXPECT_EQ(cpu.retired(), 5000u);
}

TEST(SimpleCpu, TwoPhaseRunsContinue)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    SimpleCpu cpu(q, *workload, 0, port);
    int dones = 0;
    cpu.runFor(1000, [&]() { ++dones; });
    q.run();
    Tick first = cpu.finishTick();
    cpu.runFor(1000, [&]() { ++dones; });
    q.run();
    EXPECT_EQ(dones, 2);
    EXPECT_EQ(cpu.retired(), 2000u);
    EXPECT_GT(cpu.finishTick(), first);
}

TEST(DetailedCpu, PerfectL1RunsAtEightBips)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    DetailedCpu cpu(q, *workload, 0, port);
    cpu.runFor(1000000, []() {});
    q.run();
    // 4-wide at 2 GHz = 0.125 ns/instr -> 1M instrs in 125 us.
    double ns = ticksToNs(cpu.finishTick());
    EXPECT_NEAR(ns, 125000.0, 2500.0);
}

TEST(DetailedCpu, OverlapsIndependentMisses)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    port.missEvery = 10;  // several misses per 64-entry window
    port.missLatencyNs = 500.0;
    DetailedCpu cpu(q, *workload, 0, port);
    cpu.runFor(10000, []() {});
    q.run();

    EXPECT_GT(cpu.peakOutstanding(), 2u);
    // Serial handling would need ~1000 misses * 500 ns = 500 us; MLP
    // must beat that comfortably.
    double ns = ticksToNs(cpu.finishTick());
    EXPECT_LT(ns, 0.5 * 1000 * 500.0);
}

TEST(DetailedCpu, MshrLimitCapsOverlap)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    port.missEvery = 2;
    port.missLatencyNs = 2000.0;
    CpuParams params;
    params.mshrs = 4;
    DetailedCpu cpu(q, *workload, 0, port, params);
    cpu.runFor(5000, []() {});
    q.run();
    EXPECT_LE(cpu.peakOutstanding(), 4u);
    EXPECT_LE(port.peakOutstanding, 4u);
}

TEST(DetailedCpu, RobLimitThrottlesFetchAcrossAMiss)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    // One very long miss early; with a 64-entry ROB the core can run
    // at most 64 instructions past it.
    port.missEvery = 1000000;
    port.missLatencyNs = 100000.0;
    CpuParams params;
    params.rob = 64;
    DetailedCpu cpu(q, *workload, 0, port, params);

    // First access is a hit; make the 2nd access the miss.
    port.accesses = 1000000 - 2;
    cpu.runFor(2000, []() {});
    q.run();
    // The long miss dominates the runtime: roughly miss latency.
    double ns = ticksToNs(cpu.finishTick());
    EXPECT_GT(ns, 100000.0 * 0.9);
    EXPECT_EQ(cpu.retired(), 2000u);
}

TEST(DetailedCpu, SurvivesWorkBurstsLargerThanRob)
{
    // Regression: a reference preceded by more non-memory work than
    // the ROB holds must not deadlock the fetch stall logic.
    EventQueue q;
    // mean work 40 => geometric tail regularly exceeds a 16-entry ROB.
    auto w = std::make_unique<Workload>("bursty", kNodes, 40.0, 7);
    Region::Params params;
    params.name = "bursty";
    params.base = 0x2000000;
    params.bytes = 1 << 20;
    params.pcSites = 16;
    w->addRegion(std::make_unique<ReadMostlyRegion>(
                     params, kNodes,
                     ReadMostlyRegion::Config{1024, 1.0, 0.0}),
                 1.0);

    MockPort port(q);
    port.missEvery = 5;
    port.missLatencyNs = 300.0;
    CpuParams cpu_params;
    cpu_params.rob = 16;
    DetailedCpu cpu(q, *w, 0, port, cpu_params);
    bool done = false;
    cpu.runFor(50000, [&]() { done = true; });
    q.run();
    ASSERT_TRUE(done) << "detailed CPU wedged on a large work burst";
    EXPECT_GE(cpu.retired(), 50000u);
}

TEST(DetailedCpu, RetiresInOrder)
{
    EventQueue q;
    auto workload = flatWorkload();
    MockPort port(q);
    port.missEvery = 7;
    port.missLatencyNs = 300.0;
    DetailedCpu cpu(q, *workload, 0, port);
    bool done = false;
    cpu.runFor(20000, [&]() { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(cpu.retired(), 20000u);
}

} // namespace
} // namespace dsp
