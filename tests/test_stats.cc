/**
 * @file
 * Unit tests for histograms, hot-spot accumulators, and table output.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace dsp {
namespace {

using stats::Histogram;
using stats::HotSpotAccumulator;
using stats::Table;

TEST(Histogram, RecordsAndCounts)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(2);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 0u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOverflowIntoLastBin)
{
    Histogram h(4);
    h.record(3);
    h.record(7);
    h.record(100);
    EXPECT_EQ(h.bucket(3), 3u);
}

TEST(Histogram, PercentAndMean)
{
    Histogram h(8);
    h.record(2);
    h.record(2);
    h.record(4);
    h.record(0);
    EXPECT_DOUBLE_EQ(h.percent(2), 50.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, WeightedRecording)
{
    Histogram h(4);
    h.record(1, 10);
    h.record(2, 30);
    EXPECT_EQ(h.total(), 40u);
    EXPECT_DOUBLE_EQ(h.percent(2), 75.0);
}

TEST(Histogram, EmptyPercentIsZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.percent(0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(4);
    h.record(1, 5);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, OutOfRangeBucketPanics)
{
    Histogram h(4);
    PanicGuard guard;
    EXPECT_THROW(h.bucket(4), std::runtime_error);
}

TEST(HotSpot, CoverageConcentratesOnHotKeys)
{
    HotSpotAccumulator acc;
    acc.record(1, 80);
    for (std::uint64_t k = 2; k <= 21; ++k)
        acc.record(k, 1);
    auto cov = acc.coverageAt({1, 21});
    EXPECT_DOUBLE_EQ(cov[0], 80.0);
    EXPECT_DOUBLE_EQ(cov[1], 100.0);
    EXPECT_EQ(acc.uniqueKeys(), 21u);
    EXPECT_EQ(acc.total(), 100u);
}

TEST(HotSpot, CoverageIsMonotone)
{
    HotSpotAccumulator acc;
    for (std::uint64_t k = 0; k < 100; ++k)
        acc.record(k, (k * 7919) % 97 + 1);
    auto cov = acc.coverageAt({1, 5, 10, 50, 100, 1000});
    for (std::size_t i = 1; i < cov.size(); ++i)
        EXPECT_GE(cov[i], cov[i - 1]);
    EXPECT_DOUBLE_EQ(cov.back(), 100.0);
}

TEST(HotSpot, SortedWeightsDescending)
{
    HotSpotAccumulator acc;
    acc.record(5, 3);
    acc.record(9, 10);
    acc.record(2, 7);
    auto w = acc.sortedWeights();
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0], 10u);
    EXPECT_EQ(w[1], 7u);
    EXPECT_EQ(w[2], 3u);
}

TEST(HotSpot, EmptyCoverageIsZero)
{
    HotSpotAccumulator acc;
    auto cov = acc.coverageAt({10});
    EXPECT_DOUBLE_EQ(cov[0], 0.0);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os, "Title");
    std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CellAccess)
{
    Table t({"a", "b"});
    t.addRow({"x", "y"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.cell(0, 1), "y");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    PanicGuard guard;
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    Table t({"name", "note"});
    t.addRow({"x,y", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(0), "0");
    EXPECT_EQ(Table::num(999), "999");
    EXPECT_EQ(Table::num(1000), "1,000");
    EXPECT_EQ(Table::num(1234567), "1,234,567");
    EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(Table::percent(12.345, 1), "12.3%");
}

} // namespace
} // namespace dsp
