/**
 * @file
 * Tests for the staged probe/commit access pipeline and the L0
 * block-result filter (see docs/access_pipeline.md):
 *
 *  - the walk-counter invariants (L1-hit path touches zero L2 words;
 *    a repeat hit through the L0 walks nothing; an absorbed repeat
 *    touches zero packed-array words at all);
 *  - the staged API contract (side-effect-free probe, FillHandle
 *    carried in the staged result);
 *  - L0 staleness: every coherence action that can stale an L0 entry
 *    (remote invalidation, downgrade, local L1/L2 evictions, the
 *    writeback-race shape, stamp renormalization) must be bypassed by
 *    the next access;
 *  - randomized L0-on vs L0-off equivalence at the NodeCaches level
 *    and full-System equivalence (multicast + snooping, K=1 and K=4).
 */

#include <gtest/gtest.h>

#include "mem/node_caches.hh"
#include "sim/rng.hh"
#include "system/system.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

CacheParams
tinyCaches(bool l0 = true)
{
    CacheParams params;
    params.l1 = CacheGeometry{4 * 1024, 2};
    params.l2 = CacheGeometry{16 * 1024, 4};
    params.l0Filter = l0;
    return params;
}

// ------------------------------------------------- staged API shape

TEST(AccessPipeline, ProbeIsSideEffectFree)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);

    std::uint64_t accesses = caches.accesses();
    std::uint64_t hits = caches.l1Hits();
    auto first = caches.probeAccess(0x1000, false);
    auto second = caches.probeAccess(0x1000, false);
    // No counter moved, and the second probe sees the same world.
    EXPECT_EQ(caches.accesses(), accesses);
    EXPECT_EQ(caches.l1Hits(), hits);
    EXPECT_EQ(first.result.l1Hit, second.result.l1Hit);
    EXPECT_EQ(first.path, second.path);

    caches.commitAccess(second);
    EXPECT_EQ(caches.accesses(), accesses + 1);
    EXPECT_EQ(caches.l1Hits(), hits + 1);
}

TEST(AccessPipeline, MissHandleRidesInTheStagedResult)
{
    // The FillHandle comes from the staged result, not a mutable
    // latch: a second (unrelated) access cannot clobber it.
    NodeCaches caches(tinyCaches());
    auto miss = caches.probeAccess(0x1000, false);
    caches.commitAccess(miss);
    ASSERT_EQ(miss.result.need, CoherenceNeed::GetShared);

    // An unrelated miss in between (this one would have overwritten
    // lastMissHandle()).
    auto other = caches.probeAccess(0x8000, true);
    caches.commitAccess(other);
    ASSERT_EQ(other.result.need, CoherenceNeed::GetExclusive);

    NodeCaches::FillHandle handle = miss.fillHandle();
    std::uint64_t l1_before = caches.l1TagWalks();
    std::uint64_t l2_before = caches.l2TagWalks();
    auto fill = caches.fill(0x1000, MosiState::Shared, &handle);
    EXPECT_FALSE(fill.evicted);
    if (NodeCaches::walkCounting) {
        EXPECT_EQ(caches.l1TagWalks(), l1_before);
        EXPECT_EQ(caches.l2TagWalks(), l2_before);
    }
    EXPECT_EQ(caches.stateOf(blockOf(0x1000)), MosiState::Shared);
}

// -------------------------------------------- walk-count invariants

TEST(AccessPipeline, L1HitPathTouchesZeroL2Words)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    caches.l0Invalidate(blockOf(0x1000));  // force the walk path

    std::uint64_t l2_before = caches.l2TagWalks();
    auto result = caches.access(0x1000, false);
    EXPECT_TRUE(result.l1Hit);
    if (NodeCaches::walkCounting) {
        // The L1-hit path must not reach the L2 plane at all.
        EXPECT_EQ(caches.l2TagWalks(), l2_before);
    }
}

TEST(AccessPipeline, RepeatHitWalksNothing)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    // fill() recorded the block; this repeat resolves in the L0.
    std::uint64_t l1_before = caches.l1TagWalks();
    std::uint64_t l2_before = caches.l2TagWalks();
    std::uint64_t l0_before = caches.l0Hits();
    auto result = caches.access(0x1008, true);  // same block
    EXPECT_TRUE(result.l1Hit);
    EXPECT_EQ(result.need, CoherenceNeed::None);
    EXPECT_EQ(caches.l0Hits(), l0_before + 1);
    if (NodeCaches::walkCounting) {
        EXPECT_EQ(caches.l1TagWalks(), l1_before);
        EXPECT_EQ(caches.l2TagWalks(), l2_before);
    }
}

TEST(AccessPipeline, AbsorbedRepeatTouchesZeroPackedWords)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    // The fill's L1 touch is the newest stamp in the plane, so the
    // repeat is provably MRU: no walk, no touch, clock unchanged.
    std::uint32_t clock_before = caches.debugL1Clock();
    std::uint64_t absorbed_before = caches.l0Absorbed();
    auto result = caches.access(0x1000, false);
    EXPECT_TRUE(result.l1Hit);
    EXPECT_EQ(caches.l0Absorbed(), absorbed_before + 1);
    EXPECT_EQ(caches.debugL1Clock(), clock_before);

    // A run of repeats stays absorbed (the line stays globally MRU).
    caches.access(0x1008, true);
    caches.access(0x1010, false);
    EXPECT_EQ(caches.l0Absorbed(), absorbed_before + 3);
    EXPECT_EQ(caches.debugL1Clock(), clock_before);
}

TEST(AccessPipeline, NonMruRepeatRefreshesExactlyOneWord)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Shared);
    // A different block in a different L0 slot becomes the MRU line.
    caches.fill(0x8040, MosiState::Shared);

    std::uint32_t clock_before = caches.debugL1Clock();
    std::uint64_t absorbed_before = caches.l0Absorbed();
    std::uint64_t l1_before = caches.l1TagWalks();
    auto result = caches.access(0x1000, false);  // L0 hit, not MRU
    EXPECT_TRUE(result.l1Hit);
    EXPECT_EQ(caches.l0Absorbed(), absorbed_before);  // not absorbed
    // One LRU touch (clock advanced once), still zero walks.
    EXPECT_EQ(caches.debugL1Clock(), clock_before + 1);
    if (NodeCaches::walkCounting)
        EXPECT_EQ(caches.l1TagWalks(), l1_before);
}

// ------------------------------------------------------ L0 staleness

TEST(AccessPipeline, RemoteInvalidationBypassesStaleL0)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    EXPECT_TRUE(caches.access(0x1000, true).l1Hit);  // L0-resident

    // Remote GETX: the system fan-in pairs the hook with the action.
    caches.l0Invalidate(blockOf(0x1000));
    caches.invalidate(blockOf(0x1000));

    auto result = caches.access(0x1000, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(AccessPipeline, DowngradeBypassesStaleL0Writable)
{
    NodeCaches caches(tinyCaches());
    caches.fill(0x1000, MosiState::Modified);
    EXPECT_TRUE(caches.access(0x1000, true).l1Hit);  // writable in L0

    // Remote GETS to an owned block: M -> O, write permission gone.
    caches.l0Invalidate(blockOf(0x1000));
    caches.downgrade(blockOf(0x1000));

    // Reads still hit locally; a write must go through the upgrade
    // path, not the stale writable L0 result.
    EXPECT_EQ(caches.access(0x1000, false).need, CoherenceNeed::None);
    auto write = caches.access(0x1000, true);
    EXPECT_EQ(write.need, CoherenceNeed::GetExclusive);
    EXPECT_EQ(write.l2State, MosiState::Owned);
}

TEST(AccessPipeline, LocalL1EvictionBypassesStaleL0)
{
    // A conflicting L1 install silently evicts an L0-resident block;
    // NodeCaches invalidates its own victim's L0 entry.
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};      // 16 sets, direct-mapped
    params.l2 = CacheGeometry{16 * 1024, 4};
    NodeCaches caches(params);

    caches.fill(blockBase(0), MosiState::Shared);
    EXPECT_TRUE(caches.access(blockBase(0), false).l1Hit);
    // Block 16 maps to L1 set 0 as well: evicts block 0 from the L1
    // (but not from the larger L2).
    caches.fill(blockBase(16), MosiState::Shared);

    auto result = caches.access(blockBase(0), false);
    EXPECT_FALSE(result.l1Hit);  // a stale L0 hit would say L1
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.need, CoherenceNeed::None);
}

TEST(AccessPipeline, L2EvictionBypassesStaleL0)
{
    // The writeback-race shape: an L2 conflict eviction (dirty victim
    // headed for memory) must also kill the victim's L0 entry -- a
    // racing re-access would otherwise claim an L1 hit on a block the
    // node no longer caches at all.
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};
    params.l2 = CacheGeometry{4096, 1};  // 64 sets, direct-mapped
    NodeCaches caches(params);

    caches.fill(blockBase(0), MosiState::Modified);
    EXPECT_TRUE(caches.access(blockBase(0), true).l1Hit);
    auto fill = caches.fill(blockBase(64), MosiState::Shared);
    ASSERT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victim, 0u);
    EXPECT_EQ(fill.victimState, MosiState::Modified);

    auto result = caches.access(blockBase(0), false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_FALSE(result.l2Hit);
    EXPECT_EQ(result.need, CoherenceNeed::GetShared);
}

TEST(AccessPipeline, RenormalizationCannotFakeAbsorption)
{
    // Engineered collision: an L0 entry's recorded stamp equals the
    // post-renormalization clock, but the entry's line is NOT the MRU
    // line any more. The epoch guard must refuse the absorbed path
    // (which would silently skip a real LRU touch).
    CacheParams params;
    params.l1 = CacheGeometry{1024, 1};      // 16 sets, direct-mapped
    params.l2 = CacheGeometry{16 * 1024, 4};
    params.l0Filter = true;
    NodeCaches caches(params);

    // Four L1-resident blocks (clock 1..4), then block 16 evicts
    // block 0 from its L1 set: 4 valid lines, E recorded at stamp 5.
    caches.fill(blockBase(1), MosiState::Shared);
    caches.fill(blockBase(2), MosiState::Shared);
    caches.fill(blockBase(3), MosiState::Shared);
    caches.fill(blockBase(0), MosiState::Shared);
    caches.fill(blockBase(16), MosiState::Shared);  // evicts block 0
    EXPECT_EQ(caches.debugL1Clock(), 5u);

    // Force the next L1 touch to renormalize: stamps compress to
    // 1..4 (4 valid lines), then the touch stamps 5 -- numerically
    // equal to the L0 entry's recorded stamp, in a new epoch.
    caches.debugAdvanceL1Clock(
        std::numeric_limits<std::uint32_t>::max());
    caches.fill(blockBase(4), MosiState::Shared);
    EXPECT_EQ(caches.debugL1Clock(), 5u);

    std::uint64_t absorbed_before = caches.l0Absorbed();
    auto result = caches.access(blockBase(16), false);
    EXPECT_TRUE(result.l1Hit);
    // Refreshed (one touch), NOT absorbed: block 4 is the real MRU.
    EXPECT_EQ(caches.l0Absorbed(), absorbed_before);
    EXPECT_EQ(caches.debugL1Clock(), 6u);
}

// ------------------------------------------- equivalence, L0 on/off

TEST(AccessPipeline, RandomizedL0OnOffEquivalence)
{
    // The L0 is a pure accelerator: a random access/fill/coherence
    // stream must produce identical results and counters with it on
    // and off.
    NodeCaches on(tinyCaches(true));
    NodeCaches off(tinyCaches(false));
    Rng rng(12345);

    for (int i = 0; i < 200000; ++i) {
        std::uint64_t roll = rng.uniformInt(100);
        // Small block space so hits, conflicts, and evictions are
        // all common.
        Addr addr = blockBase(rng.uniformInt(1024)) +
                    rng.uniformInt(8) * 8;
        BlockId block = blockOf(addr);
        if (roll < 80) {
            bool write = rng.chance(0.3);
            auto a = on.access(addr, write);
            auto b = off.access(addr, write);
            ASSERT_EQ(a.need, b.need);
            ASSERT_EQ(a.l1Hit, b.l1Hit);
            ASSERT_EQ(a.l2Hit, b.l2Hit);
            ASSERT_EQ(a.l2State, b.l2State);
            if (a.need != CoherenceNeed::None) {
                MosiState grant =
                    a.need == CoherenceNeed::GetExclusive
                        ? MosiState::Modified
                        : (rng.chance(0.5) ? MosiState::Shared
                                           : MosiState::Owned);
                NodeCaches::FillHandle ha = on.lastMissHandle();
                NodeCaches::FillHandle hb = off.lastMissHandle();
                auto fa = on.fill(addr, grant, &ha);
                auto fb = off.fill(addr, grant, &hb);
                ASSERT_EQ(fa.evicted, fb.evicted);
                ASSERT_EQ(fa.victim, fb.victim);
                ASSERT_EQ(fa.victimState, fb.victimState);
            }
        } else if (roll < 90) {
            on.l0Invalidate(block);
            ASSERT_EQ(on.invalidate(block), off.invalidate(block));
        } else {
            on.l0Invalidate(block);
            ASSERT_EQ(on.downgrade(block), off.downgrade(block));
        }
    }

    EXPECT_EQ(on.accesses(), off.accesses());
    EXPECT_EQ(on.l1Hits(), off.l1Hits());
    EXPECT_EQ(on.l2Hits(), off.l2Hits());
    EXPECT_EQ(on.l2Misses(), off.l2Misses());
    EXPECT_EQ(on.upgrades(), off.upgrades());
    EXPECT_EQ(on.writebacks(), off.writebacks());
    EXPECT_GT(on.l0Hits(), 0u);
    EXPECT_EQ(off.l0Hits(), 0u);
    for (BlockId b = 0; b < 1024; ++b)
        ASSERT_EQ(on.stateOf(b), off.stateOf(b));
}

SystemStats
runMini(ProtocolKind protocol, bool l0, unsigned shards)
{
    auto workload = makeWorkload("barnes", 16, /* seed */ 11, 0.25);
    SystemParams params;
    params.nodes = 16;
    params.protocol = protocol;
    params.policy = PredictorPolicy::OwnerGroup;
    params.caches.l0Filter = l0;
    params.shards = shards;
    params.functionalWarmupMisses = 2000;
    params.warmupInstrPerCpu = 2000;
    params.measureInstrPerCpu = 6000;
    System system(*workload, params);
    return system.run();
}

void
expectFigureIdentical(const SystemStats &a, const SystemStats &b)
{
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.indirections, b.indirections);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.doubleRetries, b.doubleRetries);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.cacheToCache, b.cacheToCache);
    EXPECT_EQ(a.requestMessages, b.requestMessages);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.avgMissLatencyNs, b.avgMissLatencyNs);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
}

TEST(AccessPipeline, SystemL0OnOffIdenticalMulticast)
{
    SystemStats on = runMini(ProtocolKind::Multicast, true, 1);
    SystemStats off = runMini(ProtocolKind::Multicast, false, 1);
    ASSERT_GT(on.misses, 100u);
    EXPECT_GT(on.l0Hits, 0u);
    EXPECT_EQ(off.l0Hits, 0u);
    expectFigureIdentical(on, off);
}

TEST(AccessPipeline, SystemL0OnOffIdenticalSnooping)
{
    SystemStats on = runMini(ProtocolKind::Snooping, true, 1);
    SystemStats off = runMini(ProtocolKind::Snooping, false, 1);
    ASSERT_GT(on.misses, 100u);
    expectFigureIdentical(on, off);
}

TEST(AccessPipeline, SystemL0OnOffIdenticalAtK4)
{
    // L0 on/off crossed with shard counts: all four runs must agree
    // (the L0 is per-node state, so its behaviour is partition
    // -independent by construction; this pins it).
    SystemStats on1 = runMini(ProtocolKind::Multicast, true, 1);
    SystemStats on4 = runMini(ProtocolKind::Multicast, true, 4);
    SystemStats off4 = runMini(ProtocolKind::Multicast, false, 4);
    expectFigureIdentical(on1, on4);
    EXPECT_EQ(on1.l0Hits, on4.l0Hits);
    EXPECT_EQ(on1.l0Absorbed, on4.l0Absorbed);
    expectFigureIdentical(on1, off4);
}

TEST(AccessPipeline, SystemL0OnOffIdenticalAtK4Snooping)
{
    SystemStats on1 = runMini(ProtocolKind::Snooping, true, 1);
    SystemStats on4 = runMini(ProtocolKind::Snooping, true, 4);
    SystemStats off4 = runMini(ProtocolKind::Snooping, false, 4);
    expectFigureIdentical(on1, on4);
    EXPECT_EQ(on1.l0Hits, on4.l0Hits);
    expectFigureIdentical(on1, off4);
}

// ----------------------------------------- workload scatter helpers

TEST(AccessPipeline, RankScattererMatchesScatterRank)
{
    // The per-region precomputed scatterer must be bit-identical to
    // the reference free function for every rank (the workload draw
    // streams depend on it).
    for (std::uint64_t blocks :
         {1ull, 5ull, 16ull, 100ull, 4096ull, 99991ull}) {
        RankScatterer scatter(blocks);
        for (std::uint64_t r = 0; r < std::min<std::uint64_t>(
                                          blocks * 2, 5000);
             ++r) {
            ASSERT_EQ(scatter.map(r), scatterRank(r, blocks))
                << "blocks=" << blocks << " rank=" << r;
        }
    }
}

TEST(AccessPipeline, FastModMatchesHardwareModulo)
{
    Rng rng(7);
    for (std::uint64_t d :
         {2ull, 3ull, 7ull, 16ull, 641ull, 99991ull,
          (1ull << 32) + 7}) {
        FastMod fm(d);
        for (int i = 0; i < 20000; ++i) {
            std::uint64_t n = rng.next();
            ASSERT_EQ(fm.mod(n), n % d) << "d=" << d << " n=" << n;
        }
        ASSERT_EQ(fm.mod(0), 0u);
        ASSERT_EQ(fm.mod(d), 0u);
        ASSERT_EQ(fm.mod(d - 1), d - 1);
    }
}

} // namespace
} // namespace dsp
