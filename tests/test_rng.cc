/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hh"

namespace dsp {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(1, 0), b(1, 1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        seen[rng.uniformInt(10)]++;
    for (int count : seen) {
        EXPECT_GT(count, 800);
        EXPECT_LT(count, 1200);
    }
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = rng.uniformRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

/** Property sweep: geometric samples are >= 1 and match their mean. */
class GeometricMean : public ::testing::TestWithParam<double>
{
};

TEST_P(GeometricMean, MeanAndSupport)
{
    double mean = GetParam();
    Rng rng(23);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = rng.geometric(mean);
        ASSERT_GE(v, 1u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, GeometricMean,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 8.0,
                                           16.0, 64.0));

} // namespace
} // namespace dsp
