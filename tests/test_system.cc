/**
 * @file
 * End-to-end tests of the execution-driven system: latency
 * calibration against the paper's 112/180/242 ns triple, protocol
 * runtime/traffic ordering, retry behaviour, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "system/system.hh"
#include "workload/region.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

/** Every processor scans its own cold blocks: all misses to memory. */
class ColdScanRegion : public Region
{
  public:
    ColdScanRegion(const Params &params, NodeId nodes)
        : Region(params, nodes), cursor_(nodes, 0)
    {
    }

    RegionRef
    gen(NodeId p, Rng &rng) override
    {
        std::uint64_t slice = blocks() / numNodes();
        // Stagger the cursors so concurrent scanners do not march on
        // the same home node in lockstep (slice is a multiple of the
        // node count, so aligned cursors would all share one home).
        std::uint64_t block = p * slice + (cursor_[p] + p) % slice;
        ++cursor_[p];
        return RegionRef{addrOf(block, rng), pcFor(rng), false};
    }

  private:
    std::vector<std::uint64_t> cursor_;
};

/**
 * Nodes 0 and 1 hammer writes on one shared block (pairwise
 * ping-pong); every other node hammers a private block (steady-state
 * hits). The c2c misses therefore all come from the pair.
 */
class PingPongRegion : public Region
{
  public:
    PingPongRegion(const Params &params, NodeId nodes)
        : Region(params, nodes)
    {
    }

    RegionRef
    gen(NodeId p, Rng &rng) override
    {
        // The shared block's home (block index 5 -> node 5) is
        // deliberately neither ping-pong endpoint, so minimal
        // destination sets are never accidentally sufficient.
        std::uint64_t block = p <= 1 ? 5 : p + 16;
        return RegionRef{addrOf(block, rng), pcFor(rng), true};
    }
};

template <typename RegionT>
std::unique_ptr<Workload>
scriptedWorkload(Addr bytes = 16 << 20)
{
    auto w = std::make_unique<Workload>("scripted", kNodes, 0.0, 1);
    Region::Params params;
    params.name = "scripted";
    params.base = 0x1000000;
    params.bytes = bytes;
    params.pcSites = 8;
    w->addRegion(std::make_unique<RegionT>(params, kNodes), 1.0);
    return w;
}

SystemParams
baseParams(ProtocolKind protocol,
           PredictorPolicy policy = PredictorPolicy::OwnerGroup)
{
    SystemParams params;
    params.nodes = kNodes;
    params.protocol = protocol;
    params.policy = policy;
    params.predictor.entries = 1024;
    params.warmupInstrPerCpu = 0;
    params.measureInstrPerCpu = 2000;
    // Fine-grained hit batching so contended tests interleave nodes
    // tightly (the default 500 ns quantum is tuned for throughput).
    params.cpu.quantum_ns = 50;
    return params;
}

TEST(SystemTiming, ColdScanMissesCost180nsUnderMulticast)
{
    auto workload = scriptedWorkload<ColdScanRegion>();
    SystemParams params =
        baseParams(ProtocolKind::Multicast, PredictorPolicy::Owner);
    System system(*workload, params);
    SystemStats stats = system.run();

    EXPECT_GT(stats.misses, 1000u);
    EXPECT_EQ(stats.indirections, 0u);
    EXPECT_EQ(stats.cacheToCache, 0u);
    // Every miss is a memory fetch (~180 ns plus small contention).
    EXPECT_GE(stats.avgMissLatencyNs, 168.0);  // local-home misses
    EXPECT_LE(stats.avgMissLatencyNs, 200.0);
}

TEST(SystemTiming, ColdScanIdenticalAcrossProtocols)
{
    // With no sharing, all three protocols see memory-latency misses;
    // runtimes agree within contention noise.
    std::vector<double> runtimes;
    for (ProtocolKind protocol :
         {ProtocolKind::Snooping, ProtocolKind::Directory,
          ProtocolKind::Multicast}) {
        auto workload = scriptedWorkload<ColdScanRegion>();
        System system(*workload, baseParams(protocol));
        runtimes.push_back(
            static_cast<double>(system.run().runtimeTicks));
    }
    EXPECT_NEAR(runtimes[1] / runtimes[0], 1.0, 0.05);
    EXPECT_NEAR(runtimes[2] / runtimes[0], 1.0, 0.05);
}

TEST(SystemTiming, PingPongSnoopingBeatsDirectory)
{
    SystemParams snoop_params = baseParams(ProtocolKind::Snooping);
    snoop_params.measureInstrPerCpu = 20000;
    auto snoop_workload = scriptedWorkload<PingPongRegion>();
    System snooping(*snoop_workload, snoop_params);
    SystemStats snoop = snooping.run();

    SystemParams dir_params = baseParams(ProtocolKind::Directory);
    dir_params.measureInstrPerCpu = 20000;
    auto dir_workload = scriptedWorkload<PingPongRegion>();
    System directory(*dir_workload, dir_params);
    SystemStats dir = directory.run();

    // Ping-pong writes are all cache-to-cache after the first: the
    // snooping system's direct transfers must beat the directory's
    // 3-hop indirections *per miss*. (Total runtime is not a fair
    // comparison in this saturated microbenchmark: faster
    // invalidations also mean shorter hit runs between misses.)
    EXPECT_LT(snoop.avgMissLatencyNs, dir.avgMissLatencyNs);
    EXPECT_GT(dir.indirections, dir.misses / 2);
    EXPECT_EQ(snoop.indirections, 0u);
    // Snooping must use more request traffic per miss.
    EXPECT_GT(static_cast<double>(snoop.requestMessages) /
                  static_cast<double>(snoop.misses),
              static_cast<double>(dir.requestMessages) /
                  static_cast<double>(dir.misses));
}

TEST(SystemTiming, PingPongLatenciesMatchCalibration)
{
    SystemParams params = baseParams(ProtocolKind::Snooping);
    params.measureInstrPerCpu = 20000;
    auto workload = scriptedWorkload<PingPongRegion>();
    System snooping(*workload, params);
    SystemStats stats = snooping.run();
    // Ping-pong misses under snooping are ~112 ns cache-to-cache
    // transfers plus serialization queueing at the hot block.
    EXPECT_GE(stats.avgMissLatencyNs, 100.0);
    EXPECT_GT(stats.cacheToCache, stats.misses / 2);
}

TEST(SystemTiming, DirectoryPingPongNear242)
{
    SystemParams params = baseParams(ProtocolKind::Directory);
    params.measureInstrPerCpu = 20000;
    auto workload = scriptedWorkload<PingPongRegion>();
    System directory(*workload, params);
    SystemStats stats = directory.run();
    // 3-hop transfers: at least the 242 ns calibration on average
    // (queueing only adds).
    EXPECT_GE(stats.avgMissLatencyNs, 180.0);
}

TEST(SystemTiming, MulticastWithBroadcastMatchesSnooping)
{
    SystemParams pa = baseParams(ProtocolKind::Snooping);
    pa.measureInstrPerCpu = 20000;
    auto wa = scriptedWorkload<PingPongRegion>();
    System snooping(*wa, pa);
    SystemStats snoop = snooping.run();

    SystemParams pb = baseParams(ProtocolKind::Multicast,
                                 PredictorPolicy::AlwaysBroadcast);
    pb.measureInstrPerCpu = 20000;
    auto wb = scriptedWorkload<PingPongRegion>();
    System multicast(*wb, pb);
    SystemStats multi = multicast.run();

    EXPECT_EQ(multi.indirections, 0u);
    double ratio = static_cast<double>(multi.runtimeTicks) /
                   static_cast<double>(snoop.runtimeTicks);
    EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(SystemTiming, MulticastMinimalRetriesSharingMisses)
{
    SystemParams params = baseParams(ProtocolKind::Multicast,
                                     PredictorPolicy::AlwaysMinimal);
    params.measureInstrPerCpu = 20000;
    auto workload = scriptedWorkload<PingPongRegion>();
    System multicast(*workload, params);
    SystemStats stats = multicast.run();
    // Every ping-pong miss needs the other owner: minimal sets are
    // insufficient, so the directory retries (indirections).
    EXPECT_GT(stats.retries, stats.misses / 2);
    EXPECT_GT(stats.indirections, stats.misses / 2);
}

TEST(SystemTiming, OwnerPredictorLearnsPingPong)
{
    auto workload = scriptedWorkload<PingPongRegion>();
    SystemParams params =
        baseParams(ProtocolKind::Multicast, PredictorPolicy::Owner);
    params.warmupInstrPerCpu = 10000;
    params.measureInstrPerCpu = 20000;
    System system(*workload, params);
    SystemStats stats = system.run();
    // After warmup, owners are predicted: far fewer indirections
    // than AlwaysMinimal's ~100%.
    EXPECT_LT(static_cast<double>(stats.indirections),
              0.5 * static_cast<double>(stats.misses));
}

TEST(SystemTiming, DeterministicReruns)
{
    auto run_once = []() {
        auto workload = makeWorkload("oltp", kNodes, 5, 0.05);
        SystemParams params = baseParams(ProtocolKind::Multicast);
        params.measureInstrPerCpu = 5000;
        System system(*workload, params);
        return system.run();
    };
    SystemStats a = run_once();
    SystemStats b = run_once();
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.indirections, b.indirections);
}

TEST(SystemTiming, TrafficOrderingAcrossProtocols)
{
    auto run_protocol = [](ProtocolKind protocol,
                           PredictorPolicy policy) {
        auto workload = makeWorkload("oltp", kNodes, 6, 0.05);
        SystemParams params = baseParams(protocol, policy);
        params.warmupInstrPerCpu = 3000;
        params.measureInstrPerCpu = 5000;
        System system(*workload, params);
        return system.run();
    };

    SystemStats snoop =
        run_protocol(ProtocolKind::Snooping, PredictorPolicy::Owner);
    SystemStats dir =
        run_protocol(ProtocolKind::Directory, PredictorPolicy::Owner);
    SystemStats owner =
        run_protocol(ProtocolKind::Multicast, PredictorPolicy::Owner);

    // Per-miss traffic: snooping > owner-multicast > nothing-below-
    // directory (owner sits between the anchors).
    EXPECT_GT(snoop.trafficPerMiss(), owner.trafficPerMiss());
    EXPECT_GE(owner.trafficPerMiss(), dir.trafficPerMiss() * 0.9);
}

TEST(SystemTiming, DetailedCpuIsFasterThanSimple)
{
    auto run_model = [](CpuModel model) {
        auto workload = makeWorkload("oltp", kNodes, 7, 0.05);
        SystemParams params = baseParams(ProtocolKind::Snooping);
        params.cpuModel = model;
        params.measureInstrPerCpu = 5000;
        System system(*workload, params);
        return system.run();
    };
    SystemStats simple = run_model(CpuModel::Simple);
    SystemStats detailed = run_model(CpuModel::Detailed);
    // The OoO window overlaps misses: strictly faster end-to-end.
    EXPECT_LT(detailed.runtimeTicks, simple.runtimeTicks);
}

TEST(SystemTiming, StatsAreInternallyConsistent)
{
    auto workload = makeWorkload("apache", kNodes, 8, 0.05);
    SystemParams params = baseParams(ProtocolKind::Multicast);
    params.measureInstrPerCpu = 5000;
    System system(*workload, params);
    SystemStats stats = system.run();

    EXPECT_GT(stats.misses, 0u);
    EXPECT_LE(stats.indirections, stats.misses);
    EXPECT_LE(stats.cacheToCache + stats.upgrades, stats.misses);
    EXPECT_GT(stats.trafficBytes, 0u);
    EXPECT_GT(stats.runtimeTicks, 0u);
    EXPECT_GE(stats.avgMissLatencyNs, 50.0);
    EXPECT_EQ(stats.instructions, 5000u * kNodes);
}

/** Pairwise read sharing: producer writes, consumer reads. */
class ProducerReaderRegion : public Region
{
  public:
    ProducerReaderRegion(const Params &params, NodeId nodes)
        : Region(params, nodes), toggles_(nodes, 0)
    {
    }

    RegionRef
    gen(NodeId p, Rng &rng) override
    {
        // Node 0 writes block 7; node 1 reads it; others touch
        // private blocks. Home of block 7 is node 7 (uninvolved).
        if (p == 0)
            return RegionRef{addrOf(7, rng), pcFor(rng), true};
        if (p == 1)
            return RegionRef{addrOf(7, rng), pcFor(rng), false};
        return RegionRef{addrOf(p + 16, rng), pcFor(rng), false};
    }

  private:
    std::vector<std::uint64_t> toggles_;
};

TEST(SystemTiming, DirectoryThreeHopReadPath)
{
    // Consumer reads of a dirty block under the directory protocol
    // take the forward path: request -> home -> owner -> data, 242 ns
    // uncontended.
    SystemParams params = baseParams(ProtocolKind::Directory);
    params.measureInstrPerCpu = 20000;
    auto workload = scriptedWorkload<ProducerReaderRegion>();
    System system(*workload, params);
    SystemStats stats = system.run();
    EXPECT_GT(stats.cacheToCache, 10u);
    EXPECT_GT(stats.indirections, 10u);
    // Mixture of 242 ns 3-hop transfers and cheaper upgrades.
    EXPECT_GE(stats.avgMissLatencyNs, 110.0);
}

TEST(SystemTiming, CapacityPressureProducesWritebacks)
{
    // Tiny L2s force dirty evictions; the writeback path must flow
    // (and memory must keep serving the blocks afterwards).
    auto workload = makeWorkload("oltp", kNodes, 9, 0.05);
    SystemParams params = baseParams(ProtocolKind::Multicast);
    params.caches.l1 = CacheGeometry{8 * 1024, 2};
    params.caches.l2 = CacheGeometry{64 * 1024, 4};
    params.measureInstrPerCpu = 20000;
    System system(*workload, params);
    SystemStats stats = system.run();
    EXPECT_GT(stats.writebacks, 50u);
    EXPECT_GT(stats.misses, 500u);
}

TEST(SystemTiming, ProtocolNames)
{
    EXPECT_EQ(toString(ProtocolKind::Snooping), "snooping");
    EXPECT_EQ(toString(ProtocolKind::Directory), "directory");
    EXPECT_EQ(toString(ProtocolKind::Multicast), "multicast");
}

/**
 * Nodes 0/1 ping-pong writes on one block X *and* stream writes over
 * private blocks mapping to X's L2 set, so X is repeatedly evicted
 * dirty while the other node's GETX for X is in flight -- the
 * stale-writeback race window of the hub's one-hop eviction notice.
 */
class EvictRaceRegion : public Region
{
  public:
    EvictRaceRegion(const Params &params, NodeId nodes,
                    std::uint64_t l2_sets)
        : Region(params, nodes), sets_(l2_sets), procs_(nodes)
    {
    }

    RegionRef
    gen(NodeId p, Rng &rng) override
    {
        std::uint32_t &step = procs_[p].step;
        if (p > 1)
            return RegionRef{addrOf(2048 + p, rng), pcFor(rng), false};
        std::uint64_t idx =
            step == 0 ? 0 : (1 + p * 8 + step) * sets_;
        step = (step + 1) % 6;
        return RegionRef{addrOf(idx, rng), pcFor(rng), true};
    }

  private:
    struct Proc {
        std::uint32_t step = 0;
    };
    std::uint64_t sets_;
    std::vector<Proc> procs_;
};

/**
 * Regression for the stale-writeback race: the sharing tracker learns
 * of an owned eviction one link hop late, and a GETX for the victim
 * can be ordered inside that window. The hub must drop the stale
 * notice (like hardware drops a writeback that lost the race), not
 * trip the tracker's owner assertion -- and the tolerant behaviour
 * must stay deterministic and shard-count independent.
 */
TEST(SystemTiming, StaleWritebackRaceStaysDeterministic)
{
    auto run_once = [](unsigned shards) {
        SystemParams params = baseParams(ProtocolKind::Snooping);
        params.caches.l1 = CacheGeometry{4 * 1024, 1};
        params.caches.l2 = CacheGeometry{32 * 1024, 4};
        params.measureInstrPerCpu = 40000;
        params.shards = shards;

        auto w = std::make_unique<Workload>("race", kNodes, 0.4, 9);
        Region::Params rp;
        rp.name = "race";
        rp.base = 0x1000000;
        std::uint64_t sets = params.caches.l2.sets();
        rp.bytes = 64ull * (2048 + 64 + 20 * sets);
        rp.pcSites = 4;
        w->addRegion(
            std::make_unique<EvictRaceRegion>(rp, kNodes, sets), 1.0);

        System system(*w, params);
        return system.run();
    };

    SystemStats a = run_once(1);
    // Heavy dirty-eviction traffic on a block with in-flight GETX:
    // the scenario the one-hop notice window is exposed to.
    EXPECT_GT(a.writebacks, 10000u);
    EXPECT_GT(a.cacheToCache, 1000u);

    SystemStats b = run_once(1);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);

    SystemStats c = run_once(4);
    EXPECT_EQ(a.misses, c.misses);
    EXPECT_EQ(a.runtimeTicks, c.runtimeTicks);
    EXPECT_EQ(a.trafficBytes, c.trafficBytes);
    EXPECT_EQ(a.writebacks, c.writebacks);
}

/**
 * Data-availability chaining regression (ROADMAP "data-availability
 * chaining"): with expected-completion ticks recorded at the ordering
 * point, an owner cannot supply a block before its own fill lands and
 * memory cannot supply before an in-flight writeback arrives. The
 * write ping-pong workload is the worst case -- back-to-back GETX
 * where ownership moves while the previous fill is still on the wire
 * -- so its Figure-7-style latency must shift up, deterministically.
 */
// ------------------------------------------------- scaled machines

SystemParams
scaledParams(NodeId nodes, unsigned hubs = 1, unsigned shards = 1)
{
    SystemParams params;
    params.nodes = nodes;
    params.protocol = ProtocolKind::Multicast;
    params.policy = PredictorPolicy::OwnerGroup;
    params.predictor.entries = 1024;
    params.warmupInstrPerCpu = 0;
    params.measureInstrPerCpu = 1500;
    params.shards = shards;
    params.crossbar.topology.hubs = hubs;
    return params;
}

/**
 * 64-node regression for the latent 16-node assumptions fixed during
 * parameterization: txn ids pack (seq << 16) | node (the 8-bit field
 * collided at 256 nodes), and the oracle stages per-domain records in
 * nodes + hubs buffers. Arming the oracle makes both checks real --
 * any txn-id collision or mis-bucketed record surfaces as a coherence
 * violation, which raiseOracleViolation turns into a panic.
 */
TEST(SystemScaling, SixtyFourNodesMultiHubOracleClean)
{
    auto workload = makeWorkload("oltp", 64, 11, 0.05);
    SystemParams params = scaledParams(64, /* hubs */ 4);
    params.verify.oracle = true;
    System system(*workload, params);
    SystemStats stats = system.run();
    EXPECT_EQ(stats.instructions, 1500u * 64u);
    EXPECT_GT(stats.misses, 0u);
}

/**
 * With the ordering gap disabled, hub interleaving is pure
 * partitioning: the order tick equals the hub-arrival tick whatever
 * hub a block hashes to, so H=4 must reproduce the H=1 figure
 * statistics bit-for-bit at 64 nodes. (With a nonzero gap the tiers
 * legitimately differ -- four hubs serialize a quarter of the blocks
 * each, relaxing the spacing a single hub would impose.)
 */
TEST(SystemScaling, MultiHubMatchesSingleHubBitForBit)
{
    auto run_once = [](unsigned hubs) {
        auto workload = makeWorkload("apache", 64, 12, 0.05);
        SystemParams params = scaledParams(64, hubs);
        params.crossbar.ordering_gap_ns = 0.0;
        System system(*workload, params);
        return system.run();
    };
    SystemStats one = run_once(1);
    SystemStats four = run_once(4);
    EXPECT_EQ(one.runtimeTicks, four.runtimeTicks);
    EXPECT_EQ(one.misses, four.misses);
    EXPECT_EQ(one.retries, four.retries);
    EXPECT_EQ(one.trafficBytes, four.trafficBytes);
    EXPECT_EQ(one.indirections, four.indirections);
    EXPECT_EQ(one.cacheToCache, four.cacheToCache);
    EXPECT_EQ(one.writebacks, four.writebacks);
}

/** The determinism contract at scale: K=4 shards over a 64-node
 *  4-hub machine match K=1 bit-for-bit on every figure statistic. */
TEST(SystemScaling, ShardedBitEquivalenceAt64Nodes)
{
    auto run_once = [](unsigned shards) {
        auto workload = makeWorkload("oltp", 64, 13, 0.05);
        System system(*workload,
                      scaledParams(64, /* hubs */ 4, shards));
        return system.run();
    };
    SystemStats k1 = run_once(1);
    SystemStats k4 = run_once(4);
    EXPECT_EQ(k1.runtimeTicks, k4.runtimeTicks);
    EXPECT_EQ(k1.misses, k4.misses);
    EXPECT_EQ(k1.retries, k4.retries);
    EXPECT_EQ(k1.trafficBytes, k4.trafficBytes);
    EXPECT_EQ(k1.indirections, k4.indirections);
    EXPECT_EQ(k1.writebacks, k4.writebacks);
}

/**
 * A hierarchical 64-node machine (4 clusters of 16 behind a slow
 * switch tier: 10 ns cluster links, 40 ns switch links) runs to
 * completion and pays for cross-cluster transfers. Most sharer pairs
 * straddle clusters (48 of every 64 peers are remote), so the 100 ns
 * cross-cluster hop -- against the flat machine's uniform 50 ns --
 * must raise average miss latency even though intra-cluster hops got
 * cheaper (20 ns).
 */
TEST(SystemScaling, HierarchicalSwitchTierRaisesCrossClusterLatency)
{
    auto run_once = [](bool hierarchical) {
        auto workload = makeWorkload("apache", 64, 14, 0.05);
        SystemParams params = scaledParams(64, /* hubs */ 2);
        if (hierarchical) {
            params.crossbar.topology.cluster_size = 16;
            params.crossbar.topology.cluster_link_ns = 10.0;
            params.crossbar.topology.switch_link_ns = 40.0;
        }
        System system(*workload, params);
        return system.run();
    };
    SystemStats flat = run_once(false);
    SystemStats hier = run_once(true);
    EXPECT_GT(flat.misses, 0u);
    EXPECT_GT(hier.avgMissLatencyNs, flat.avgMissLatencyNs);
}

TEST(SystemTiming, DataChainingShiftsPingPongLatency)
{
    auto run_once = [](bool chaining) {
        SystemParams params = baseParams(ProtocolKind::Snooping);
        params.measureInstrPerCpu = 20000;
        params.dataChaining = chaining;
        auto workload = scriptedWorkload<PingPongRegion>();
        System system(*workload, params);
        return system.run();
    };

    SystemStats chained = run_once(true);
    SystemStats unchained = run_once(false);

    // Chaining only ever delays data responses: the shift is strictly
    // upward, visible on this workload, and bounded (an extra supply
    // wait is at most one miss round-trip).
    EXPECT_GT(chained.avgMissLatencyNs, unchained.avgMissLatencyNs);
    EXPECT_LT(chained.avgMissLatencyNs,
              2.0 * unchained.avgMissLatencyNs + 100.0);
    EXPECT_GE(chained.runtimeTicks, unchained.runtimeTicks);
    // The functional outcome is unchanged -- same sharing behaviour,
    // only timing moves.
    EXPECT_GT(chained.cacheToCache, chained.misses / 2);

    // Pin the shift: rerunning either config reproduces its latency
    // bit-for-bit (the chained tick arithmetic is all-integer).
    SystemStats chained2 = run_once(true);
    EXPECT_EQ(chained.avgMissLatencyNs, chained2.avgMissLatencyNs);
    EXPECT_EQ(chained.runtimeTicks, chained2.runtimeTicks);
    EXPECT_EQ(chained.misses, chained2.misses);
}

} // namespace
} // namespace dsp
